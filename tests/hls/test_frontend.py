"""Tests for the DF-IO dataflow front end."""

from collections import Counter

import numpy as np
import pytest

from repro.components import default_environment
from repro.hls.frontend import compile_kernel, compile_program
from repro.hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    Select,
    StoreOp,
    UnOp,
    Var,
)


def simple_program(stores=(), cond_var="n"):
    loop = DoWhile(
        "count",
        ("n", "i"),
        {"n": BinOp("sub", Var("n"), Const(1)), "i": Var("i")},
        BinOp("lt", Const(0), Var(cond_var)),
        ("n", "i"),
        stores=stores,
    )
    kernel = Kernel(
        "count",
        loop,
        (OuterLoop("i", 3),),
        {"n": BinOp("add", Var("i"), Const(1)), "i": Var("i")},
        (StoreOp("out", Var("i"), Var("n")),),
        tags=2,
    )
    return Program("count", {"out": np.zeros(3)}, [kernel])


@pytest.fixture
def env():
    return default_environment()


class TestStructure:
    def test_one_mux_branch_per_state_var(self, env):
        compiled = compile_program(simple_program(), env)
        graph = compiled.kernels[0].graph
        types = Counter(spec.typ for spec in graph.nodes.values())
        assert types["Mux"] == 2
        assert types["Branch"] == 2
        assert types["Init"] == 1
        assert types["Driver"] == 1
        assert types["Collector"] == 1

    def test_graph_is_closed(self, env):
        compiled = compile_program(simple_program(), env)
        compiled.kernels[0].graph.validate()

    def test_loop_mark_points_at_real_nodes(self, env):
        compiled = compile_program(simple_program(), env)
        ck = compiled.kernels[0]
        for name in ck.mark.mux_nodes + ck.mark.branch_nodes + [
            ck.mark.init_node,
            ck.mark.cond_fork,
            ck.mark.driver,
            ck.mark.collector,
        ]:
            assert name in ck.graph.nodes

    def test_effectful_mark(self, env):
        stores = (StoreOp("out", Var("n"), Var("i")),)
        compiled = compile_program(simple_program(stores=stores), env)
        assert compiled.kernels[0].mark.effectful
        types = Counter(s.typ for s in compiled.kernels[0].graph.nodes.values())
        assert types["Store"] == 1

    def test_forks_are_binary(self, env):
        compiled = compile_program(simple_program(), env)
        for spec in compiled.kernels[0].graph.nodes.values():
            if spec.typ == "Fork":
                assert spec.param("n") == 2


class TestOperators:
    def test_constants_folded_into_partial_ops(self, env):
        compiled = compile_program(simple_program(), env)
        graph = compiled.kernels[0].graph
        ops = [str(s.param("op")) for s in graph.nodes.values() if s.typ == "Operator"]
        assert any(op.startswith("sub.k1.") for op in ops)
        assert not any(s.typ == "Constant" for s in graph.nodes.values())

    def test_partial_op_functions_registered(self, env):
        compiled = compile_program(simple_program(), env)
        graph = compiled.kernels[0].graph
        for spec in graph.nodes.values():
            if spec.typ == "Operator":
                fn = env.function(str(spec.param("op")))
                assert fn.arity == len(spec.in_ports)

    def test_array_reader_registered_for_body_loads(self, env):
        loop = DoWhile(
            "sum",
            ("s", "i"),
            {"s": BinOp("add", Var("s"), Load("data", Var("i"))), "i": BinOp("add", Var("i"), Const(1))},
            BinOp("lt", Var("i"), Const(3)),
            ("s",),
        )
        kernel = Kernel("sum", loop, (OuterLoop("o", 1),), {"s": Const(0), "i": Const(0)})
        program = Program("sum", {"data": np.array([5, 6, 7])}, [kernel])
        compile_program(program, env)
        assert env.function("read.data")(1) == 6

    def test_select_with_constant_arm(self, env):
        loop = DoWhile(
            "sel",
            ("x",),
            {"x": Select(BinOp("lt", Var("x"), Const(0)), BinOp("sub", Var("x"), Const(1)), Const(0))},
            UnOp("ne0", Var("x")),
            ("x",),
        )
        kernel = Kernel("sel", loop, (OuterLoop("i", 1),), {"x": Const(-3)})
        program = Program("sel", {}, [kernel])
        compiled = compile_program(program, env)
        ops = [
            str(s.param("op"))
            for s in compiled.kernels[0].graph.nodes.values()
            if s.typ == "Operator"
        ]
        assert any(op.startswith("select.k2.") for op in ops)


class TestSemanticsAgainstReference:
    def test_compiled_ops_compute_reference_values(self, env):
        """The registered operator functions, applied per the body wiring,
        must reproduce one reference loop step."""
        program = simple_program()
        compiled = compile_program(program, env)
        # dec: n' = n - 1 via the partial op
        fn = env.function("sub.k1.1")
        assert fn(5) == 4
        cmp_fn = env.function("lt.k0.0")
        assert cmp_fn(3) is True
        assert cmp_fn(0) is False
