"""The asyncio HTTP front end: :class:`ServiceServer`.

One process, one event loop, no dependencies beyond the standard library.
The HTTP layer is deliberately minimal — request line, headers,
``Content-Length`` body, ``Connection: close`` on every response — because
the service speaks a small, known protocol to its own client and to CI,
not to arbitrary browsers.

Architecture::

    ServiceClient ──HTTP──▶ asyncio.start_server
                               │ parse + route
                               ▼
                            JobQueue (priority heap, N worker tasks)
                               │ checkout Session, run_in_executor
                               ▼
                    ThreadPoolExecutor (N threads, scoped tracer each)
                               │ Session.transform/verify/simulate/bench
                               ▼
                            ResultStore (content-addressed dedupe)

Concurrency model: the event loop owns all job/queue state; blocking
Session work happens on a thread pool sized to the worker count, each
thread checking a Session out of a pool (one per slot, so a Session is
never shared across concurrent jobs).  Each job runs under a
request-scoped tracer (:func:`repro.obs.scoped_tracer`), so its counters
are isolated from concurrent jobs and roll up into the job's status —
installed *inside* the worker thread, because context variables do not
follow ``run_in_executor`` across threads.

Endpoints (all JSON; ``{hash}``/``{id}`` are path segments):

===========================================  =====================================
``POST /v1/jobs``                            submit ``{kind, params, priority?,
                                             timeout?, dedup?}``; 200 when served
                                             from the store, else 202
``GET /v1/jobs/{id}``                        status; ``?watch=1`` streams NDJSON
                                             status lines until terminal
``GET /v1/jobs/{id}/result``                 the wire-format result (409 until
                                             terminal, 500 for failed jobs)
``DELETE /v1/jobs/{id}``                     cancel (also ``POST .../cancel``)
``GET /v1/certificates/{hash}``              recheck-validated certificate
                                             (JSON; ``Accept:
                                             application/x-repro-certificate``
                                             selects the binary container)
``GET /v1/metrics``                          queue/store/session accounting
``POST /v1/admin/shutdown``                  graceful shutdown
===========================================  =====================================
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from .. import obs
from .._version import __version__ as TOOL_VERSION
from ..errors import GraphitiError, ServiceError
from ..results import SCHEMA_VERSION
from .jobs import Job, JobQueue
from .ops import canonical_params, run_op
from .store import ResultStore

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error",
    503: "Service Unavailable",
}
_MAX_BODY = 16 * 1024 * 1024  # a dot graph plus mark fits comfortably


class ServiceServer:
    """The verification-as-a-service HTTP server.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    workers:
        Concurrent job slots: worker tasks, worker threads and pooled
        Sessions all share this width.
    jobs:
        Process-pool width *inside each Session* (``Session(jobs=...)``);
        total parallelism is ``workers x jobs``.
    cache_dir, use_cache:
        Shared content-addressed store for results and certificates; the
        pooled Sessions point their executor caches at the same directory,
        which is what lets ``check_obligations`` populate the certificate
        endpoint.
    max_pending, default_timeout:
        Queue backpressure bound and per-job timeout default.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8750,
        *,
        workers: int = 2,
        jobs: int = 1,
        cache_dir=None,
        use_cache: bool = True,
        max_pending: int = 256,
        default_timeout: float | None = 600.0,
    ):
        from ..api import Session

        self.host = host
        self._port = int(port)
        self.workers = max(1, int(workers))
        self.store = ResultStore(cache_dir=cache_dir, use_cache=use_cache)
        cache_root = getattr(self.store.cache, "root", None)
        self._sessions: asyncio.Queue = asyncio.Queue()
        self._all_sessions = [
            Session(jobs=jobs, cache_dir=cache_root, use_cache=use_cache)
            for _ in range(self.workers)
        ]
        self.queue = JobQueue(
            self._execute,
            concurrency=self.workers,
            max_pending=max_pending,
            default_timeout=default_timeout,
        )
        self._threads = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._started = perf_counter()

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self._port

    async def start(self) -> None:
        for session in self._all_sessions:
            self._sessions.put_nowait(session)
        self._server = await asyncio.start_server(self._handle, self.host, self._port)
        self._port = self._server.sockets[0].getsockname()[1]
        self.queue.start()

    async def serve_forever(self) -> None:
        """Serve until ``POST /v1/admin/shutdown`` (or :meth:`close`)."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, drain workers and sessions."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.close()
        self._threads.shutdown(wait=True)
        for session in self._all_sessions:
            session.close()

    def run(self) -> None:
        """Blocking entry point (the ``repro serve`` subcommand)."""
        async def main() -> None:
            await self.start()
            print(
                f"repro service v{TOOL_VERSION} listening on "
                f"http://{self.host}:{self.port} "
                f"({self.workers} workers, schema v{SCHEMA_VERSION})",
                flush=True,
            )
            await self.serve_forever()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass

    # -- job execution ------------------------------------------------------

    async def _execute(self, job: Job):
        """JobQueue's execute hook: session checkout + thread-pool hop."""
        session = await self._sessions.get()
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                self._threads, self._run_job, session, job
            )
        finally:
            self._sessions.put_nowait(session)
        job.metrics = outcome["metrics"]
        if job.key is not None:
            self.store.put(job.key, outcome["result"])
        return outcome["result"]

    def _run_job(self, session, job: Job) -> dict:
        """Runs in a worker thread: scoped tracer + the actual op."""
        with obs.scoped_tracer() as tracer:
            start = perf_counter()
            result = run_op(session, job.kind, job.params)
            seconds = perf_counter() - start
            return {
                "result": result,
                "metrics": {
                    "seconds": round(seconds, 6),
                    "counters": dict(tracer.counters),
                },
            }

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body, headers = request
            await self._route(writer, method, path, query, body, headers)
        except ConnectionError:
            pass
        except Exception as exc:  # noqa: BLE001 - connection isolation boundary
            try:
                await self._respond(writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split(" ")
        if len(parts) != 3:
            return None
        method, target, _ = parts
        path, _, raw_query = target.partition("?")
        query = {}
        for pair in raw_query.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        if length > _MAX_BODY:
            raise ServiceError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, query, body, headers

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload, *, headers=()
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
            *headers,
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- routing ------------------------------------------------------------

    async def _route(
        self, writer, method: str, path: str, query: dict, body: bytes,
        headers: dict | None = None,
    ):
        segments = [segment for segment in path.split("/") if segment]
        if len(segments) < 2 or segments[0] != "v1":
            return await self._respond(writer, 404, {"error": f"no such path {path!r}"})
        head, rest = segments[1], segments[2:]

        if head == "jobs" and not rest:
            if method != "POST":
                return await self._respond(writer, 405, {"error": "use POST /v1/jobs"})
            return await self._submit(writer, body)
        if head == "jobs" and rest:
            return await self._job_route(writer, method, rest, query)
        if head == "certificates" and len(rest) == 1 and method == "GET":
            return await self._certificate(writer, rest[0], headers or {})
        if head == "metrics" and not rest and method == "GET":
            return await self._respond(writer, 200, self._metrics())
        if head == "admin" and rest == ["shutdown"] and method == "POST":
            await self._respond(writer, 200, {"ok": True, "state": "shutting-down"})
            self._shutdown.set()
            return None
        return await self._respond(
            writer, 404, {"error": f"no route for {method} {path}"}
        )

    async def _submit(self, writer, body: bytes):
        try:
            request = json.loads(body.decode() or "{}")
            if not isinstance(request, dict):
                raise ServiceError("job submission body must be a JSON object")
            kind = request.get("kind")
            params = canonical_params(kind, request.get("params"))
            priority = int(request.get("priority", 0))
            timeout = request.get("timeout")
            timeout = float(timeout) if timeout is not None else None
            dedup = bool(request.get("dedup", True))
        except (ValueError, TypeError) as exc:
            return await self._respond(writer, 400, {"error": f"bad job submission: {exc}"})
        except ServiceError as exc:
            return await self._respond(writer, 400, {"error": str(exc)})

        key = self.store.key_for(kind, params)
        if dedup:
            stored = self.store.get(key)
            if stored is not None:
                job = self.queue.new_job(kind, params, key=key, priority=priority)
                await self.queue.finish_from_store(job, stored)
                return await self._respond(writer, 200, job.status_dict())
            active = self.queue.find_active(key)
            if active is not None:
                active.coalesced += 1
                return await self._respond(writer, 202, active.status_dict())
        try:
            job = self.queue.new_job(
                kind, params, key=key if dedup else None,
                priority=priority, timeout=timeout,
            )
            self.queue.submit(job)
        except ServiceError as exc:
            return await self._respond(writer, 503, {"error": str(exc)})
        return await self._respond(writer, 202, job.status_dict())

    async def _job_route(self, writer, method: str, rest: list, query: dict):
        try:
            job = self.queue.get(rest[0])
        except ServiceError as exc:
            return await self._respond(writer, 404, {"error": str(exc)})
        tail = rest[1:]
        if not tail and method == "GET":
            if query.get("watch"):
                return await self._watch(writer, job)
            return await self._respond(writer, 200, job.status_dict())
        if (not tail and method == "DELETE") or (tail == ["cancel"] and method == "POST"):
            job = await self.queue.cancel(job.id)
            return await self._respond(writer, 200, job.status_dict())
        if tail == ["result"] and method == "GET":
            if job.state == "done":
                return await self._respond(writer, 200, job.result)
            if job.state == "failed":
                return await self._respond(writer, 500, job.status_dict())
            if job.state == "cancelled":
                return await self._respond(writer, 409, job.status_dict())
            return await self._respond(writer, 409, job.status_dict())
        return await self._respond(writer, 405, {"error": f"no job route {method} {tail}"})

    async def _watch(self, writer, job: Job):
        """Stream NDJSON status lines until the job is terminal."""
        head = [
            "HTTP/1.1 200 OK",
            "Content-Type: application/x-ndjson",
            "Connection: close",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
        while True:
            status = job.status_dict()
            writer.write((json.dumps(status) + "\n").encode())
            await writer.drain()
            if job.terminal:
                return
            await self.queue.wait_change(job, status["version"])

    async def _certificate(self, writer, content_hash: str, headers: dict):
        """Serve one certificate, negotiating the wire encoding.

        JSON is the default; a client accepting
        ``application/x-repro-certificate`` (or ``application/octet-stream``)
        gets the compact binary container instead.  Both encodings are
        transcoded from whatever is stored, after re-validation.
        """
        accept = headers.get("accept", "")
        if "application/x-repro-certificate" in accept or "application/octet-stream" in accept:
            blob = self.store.certificate_bytes(content_hash)
            if blob is None:
                return await self._respond(
                    writer, 404,
                    {"error": f"no valid certificate with hash {content_hash!r}"},
                )
            head = [
                "HTTP/1.1 200 OK",
                "Content-Type: application/x-repro-certificate",
                f"Content-Length: {len(blob)}",
                "Connection: close",
            ]
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + blob)
            await writer.drain()
            return None
        payload = self.store.certificate(content_hash)
        if payload is None:
            return await self._respond(
                writer, 404,
                {"error": f"no valid certificate with hash {content_hash!r}"},
            )
        return await self._respond(writer, 200, payload)

    def _metrics(self) -> dict:
        return {
            "kind": "ServiceMetrics",
            "schema_version": SCHEMA_VERSION,
            "tool_version": TOOL_VERSION,
            "uptime_seconds": round(perf_counter() - self._started, 3),
            "workers": self.workers,
            "jobs": self.queue.counts(),
            "store": self.store.stats(),
            "sessions_idle": self._sessions.qsize(),
        }


def serve(argv_namespace) -> int:
    """The ``repro serve`` CLI entry point (validated args in, exit code out)."""
    try:
        server = ServiceServer(
            host=argv_namespace.host,
            port=argv_namespace.port,
            workers=argv_namespace.workers,
            jobs=getattr(argv_namespace, "jobs", 1),
            cache_dir=getattr(argv_namespace, "cache_dir", None),
            use_cache=not getattr(argv_namespace, "no_cache", False),
            max_pending=argv_namespace.max_pending,
            default_timeout=argv_namespace.job_timeout,
        )
    except GraphitiError as exc:
        print(f"error: {exc}", flush=True)
        return 2
    server.run()
    return 0
