"""Content-addressed on-disk result cache.

Entries are JSON files keyed by a fingerprint (see
:mod:`repro.exec.hashing`), sharded by the first two hex digits so a large
cache does not put thousands of files in one directory.  Writes go through
a temporary file plus :func:`os.replace`, so a concurrent reader never sees
a half-written entry; a corrupted entry (truncated file, hand-edited JSON,
wrong embedded key) is quarantined by deletion and reported as a miss, so
the worst failure mode is recomputation.

:class:`NullCache` is the ``--no-cache`` implementation: same interface,
never stores anything.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import GraphitiError

#: Bump when the entry layout changes; older entries then read as misses.
CACHE_FORMAT = 1


class CacheError(GraphitiError):
    """The cache directory could not be created or written."""


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


@dataclass
class ResultCache:
    """A directory of content-addressed JSON entries."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(f"cannot create cache directory {self.root}: {exc}") from exc

    # -- addressing ---------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- operations ---------------------------------------------------------

    def get(self, key: str) -> object | None:
        """The stored payload, or None on miss (including corrupted entries)."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry["format"] != CACHE_FORMAT or entry["key"] != key:
                raise ValueError("stale format or mismatched key")
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError):
            # Corrupted or stale: quarantine by deletion, report a miss.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: object) -> None:
        """Store a JSON-serialisable, non-None payload atomically."""
        if payload is None:
            raise CacheError("cache payloads must not be None (None encodes a miss)")
        path = self.path_for(key)
        entry = {"format": CACHE_FORMAT, "key": key, "payload": payload}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError as exc:
            raise CacheError(f"cannot write cache entry {path}: {exc}") from exc
        self.stats.writes += 1

    # -- binary entries ------------------------------------------------------
    #
    # Some payloads (compact binary certificates) are raw byte strings with
    # their own integrity headers; wrapping them in JSON would force a
    # base64 blowup.  They live next to the JSON entries as ``.bin`` files
    # under the same sharded key scheme, written with the same
    # tempfile+replace atomicity.  Self-describing formats carry their own
    # tamper detection, so no JSON envelope is layered on top.

    def bin_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.bin"

    def get_bytes(self, key: str) -> bytes | None:
        """The stored binary payload, or None on miss."""
        try:
            data = self.bin_path_for(key).read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return data

    def put_bytes(self, key: str, payload: bytes) -> None:
        """Store a raw binary payload atomically."""
        path = self.bin_path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError as exc:
            raise CacheError(f"cannot write cache entry {path}: {exc}") from exc
        self.stats.writes += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json")) + sum(
            1 for _ in self.root.glob("*/*.bin")
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for pattern in ("*/*.json", "*/*.bin"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class NullCache:
    """The disabled cache: every lookup misses, nothing is stored."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: str) -> None:
        self.stats.misses += 1
        return None

    def put(self, key: str, payload: object) -> None:
        pass

    def get_bytes(self, key: str) -> None:
        self.stats.misses += 1
        return None

    def put_bytes(self, key: str, payload: bytes) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def clear(self) -> int:
        return 0


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/graphiti-repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "graphiti-repro"
