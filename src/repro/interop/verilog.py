"""A small structural-Verilog subset for dataflow-graph interchange.

The grammar (everything the writer emits, everything the reader accepts)::

    module    ::= "module" ID "(" portdecl ("," portdecl)* ")" ";"
                  item* "endmodule"
    portdecl  ::= ("input" | "output") ID          # ID is  inN / outN
    item      ::= wiredecl | attrs? instance
    wiredecl  ::= "wire" ID ("," ID)* ";"
    attrs     ::= "(*" attr ("," attr)* "*)"
    attr      ::= ID "=" STRING
    instance  ::= ID params? ID "(" conn ("," conn)* ")" ";"
    params    ::= "#" "(" pconn ("," pconn)* ")"
    pconn     ::= "." ID "(" STRING ")"
    conn      ::= "." ID "(" ID ")"
    STRING    ::= '"' [^"\\\\]* '"'
    ID        ::= [A-Za-z_][A-Za-z0-9_$]*

``//`` line comments are skipped.  Structural conventions:

* module ports are named ``in<index>`` / ``out<index>`` and carry the
  graph's external I/O indices;
* every internal connection is one ``wire`` with exactly one driver
  (an instance output port) and one sink (an instance input port);
* each instance is preceded by an attribute block
  ``(* in = "a b", out = "c" *)`` giving the component's *ordered* port
  lists — port order is semantic in the graph core (it fixes the
  ExprLow lowering), and Verilog named port connections alone cannot
  carry it;
* instance parameters hold the canonically encoded values of
  :mod:`repro.core.encoding`, quoted: ``#(.op("add"), .type("i32"))``.

The writer is deterministic (sorted instances, canonical wire numbering
from :meth:`ExprHigh.sorted_connections`), so equal graphs produce
byte-identical text and ``parse_verilog(dump_verilog(g))[1] == g``.
"""

from __future__ import annotations

import re

from ..core.encoding import decode_component
from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec
from ..errors import GraphitiError, NetlistError

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*\Z")

_TOKEN = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*)
    | (?P<attr_open>\(\*)
    | (?P<attr_close>\*\))
    | (?P<string>"[^"\\\n]*")
    | (?P<id>[A-Za-z_][A-Za-z0-9_$]*)
    | (?P<punct>[(),;.#=])
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"module", "endmodule", "input", "output", "wire"})


def _check_ident(name: str, what: str) -> str:
    if not _IDENT.match(name) or name in _KEYWORDS:
        raise NetlistError(f"{what} {name!r} is not a legal Verilog identifier")
    return name


# -- writer -----------------------------------------------------------------


def dump_verilog(graph: ExprHigh, name: str = "graph") -> str:
    """Serialise a closed *graph* as one structural-Verilog module."""
    graph.validate()
    _check_ident(name, "module name")

    wires: dict[Endpoint, str] = {}  # dst endpoint -> wire name
    for number, (dst, _src) in enumerate(graph.sorted_connections()):
        wires[dst] = f"w{number}"
    input_nets = {endpoint: f"in{index}" for index, endpoint in graph.inputs.items()}
    output_nets = {endpoint: f"out{index}" for index, endpoint in graph.outputs.items()}

    def net_for(node: str, port: str, direction: str) -> str:
        endpoint = Endpoint(node, port)
        if direction == "in":
            if endpoint in graph.connections:
                return wires[endpoint]
            return input_nets[endpoint]
        sink = graph.sink_of(node, port)
        if sink is not None:
            return wires[sink]
        return output_nets[endpoint]

    lines = ["// graphiti structural netlist"]
    ports = [f"  input {input_nets[e]}" for _, e in sorted(graph.inputs.items())]
    ports += [f"  output {output_nets[e]}" for _, e in sorted(graph.outputs.items())]
    if ports:
        lines.append(f"module {name} (")
        lines.append(",\n".join(ports))
        lines.append(");")
    else:
        lines.append(f"module {name} ();")
    for number in range(len(wires)):
        lines.append(f"  wire w{number};")
    for node_name in sorted(graph.nodes):
        spec = graph.nodes[node_name]
        _check_ident(node_name, "instance name")
        _check_ident(spec.typ, "component type")
        for port in spec.in_ports + spec.out_ports:
            _check_ident(port, f"port of {node_name!r}")
        lines.append("")
        lines.append(
            f'  (* in = "{" ".join(spec.in_ports)}", out = "{" ".join(spec.out_ports)}" *)'
        )
        params = ""
        if spec.params:
            encoded = []
            for key, value in spec.params:
                text = _encode_param(key, value)
                encoded.append(f'.{key}("{text}")')
            params = f" #({', '.join(encoded)})"
        conns = [f".{p}({net_for(node_name, p, 'in')})" for p in spec.in_ports]
        conns += [f".{p}({net_for(node_name, p, 'out')})" for p in spec.out_ports]
        lines.append(f"  {spec.typ}{params} {node_name} ({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _encode_param(key: str, value: object) -> str:
    # Reuse the component-string value conventions so the reader can decode
    # through decode_component; the Verilog quoting adds its own constraint.
    from ..core.encoding import encode_component

    encoded = encode_component("X", {key: value})  # X{key=text}
    text = encoded[len(key) + 3 : -1]
    if '"' in text or "\\" in text or "\n" in text:
        raise NetlistError(f"parameter {key}={value!r} cannot be quoted in Verilog")
    return text


# -- reader -----------------------------------------------------------------


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise NetlistError(f"unexpected character {text[pos]!r}", line=line)
        kind = match.lastgroup
        chunk = match.group()
        if kind == "ws" or kind == "comment":
            line += chunk.count("\n")
        elif kind == "string":
            tokens.append(_Token("string", chunk[1:-1], line))
        elif kind == "punct":
            tokens.append(_Token(chunk, chunk, line))
        else:
            tokens.append(_Token(kind, chunk, line))
        pos = match.end()
    return tokens


class _Stream:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise NetlistError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, kind: str, what: str | None = None) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise NetlistError(
                f"expected {what or kind!r}, got {token.text!r}", line=token.line
            )
        return token

    def expect_keyword(self, word: str) -> _Token:
        token = self.expect("id", word)
        if token.text != word:
            raise NetlistError(f"expected {word!r}, got {token.text!r}", line=token.line)
        return token

    def accept(self, kind: str) -> _Token | None:
        token = self.peek()
        if token is not None and token.kind == kind:
            self.pos += 1
            return token
        return None


def parse_verilog(text: str) -> tuple[str, ExprHigh]:
    """Parse one structural-Verilog module; returns ``(name, graph)``."""
    stream = _Stream(_tokenize(text))
    stream.expect_keyword("module")
    name = stream.expect("id", "module name").text

    io_index: dict[str, tuple[str, int]] = {}  # net name -> (direction, index)
    stream.expect("(")
    while stream.peek() is not None and stream.peek().kind == "id":
        token = stream.expect("id", "port declaration")
        if token.text not in ("input", "output"):
            raise NetlistError(
                f"expected 'input' or 'output', got {token.text!r}", line=token.line
            )
        port = stream.expect("id", "port name")
        prefix = "in" if token.text == "input" else "out"
        if not port.text.startswith(prefix) or not port.text[len(prefix) :].isdigit():
            raise NetlistError(
                f"module port {port.text!r} must be named {prefix}<index>", line=port.line
            )
        io_index[port.text] = (token.text, int(port.text[len(prefix) :]))
        if stream.accept(",") is None:
            break
    stream.expect(")")
    stream.expect(";")

    graph = ExprHigh()
    wires: set[str] = set()
    drivers: dict[str, Endpoint] = {}
    sinks: dict[str, Endpoint] = {}
    pending_attrs: dict[str, str] = {}

    while True:
        token = stream.next()
        if token.kind == "id" and token.text == "endmodule":
            break
        if token.kind == "id" and token.text == "wire":
            while True:
                wire = stream.expect("id", "wire name")
                wires.add(wire.text)
                if stream.accept(",") is None:
                    break
            stream.expect(";")
            continue
        if token.kind == "attr_open":
            pending_attrs = {}
            while True:
                key = stream.expect("id", "attribute name")
                stream.expect("=")
                value = stream.expect("string", "attribute value")
                pending_attrs[key.text] = value.text
                if stream.accept(",") is None:
                    break
            stream.expect("attr_close")
            continue
        if token.kind == "id":
            _parse_instance(
                stream, graph, token, pending_attrs, io_index, wires, drivers, sinks
            )
            pending_attrs = {}
            continue
        raise NetlistError(f"unexpected token {token.text!r}", line=token.line)

    for wire in sorted(drivers.keys() | sinks.keys()):
        src = drivers.get(wire)
        dst = sinks.get(wire)
        if src is None or dst is None:
            end = "driver" if src is None else "sink"
            raise NetlistError(f"wire {wire!r} has no {end}")
        try:
            graph.connect(src.node, src.port, dst.node, dst.port)
        except GraphitiError as exc:
            raise NetlistError(f"wire {wire!r}: {exc}") from exc
    return name, graph


def _parse_instance(stream, graph, type_token, attrs, io_index, wires, drivers, sinks):
    typ = type_token.text
    params: dict[str, str] = {}
    if stream.accept("#") is not None:
        stream.expect("(")
        while True:
            stream.expect(".")
            key = stream.expect("id", "parameter name")
            stream.expect("(")
            value = stream.expect("string", "parameter value")
            stream.expect(")")
            params[key.text] = value.text
            if stream.accept(",") is None:
                break
        stream.expect(")")
    inst = stream.expect("id", "instance name")
    in_ports = tuple(attrs.get("in", "").split())
    out_ports = tuple(attrs.get("out", "").split())
    if not attrs:
        raise NetlistError(
            f"instance {inst.text!r} is missing its (* in = ..., out = ... *) attribute",
            line=inst.line,
        )
    if params:
        body = ";".join(f"{key}={params[key]}" for key in sorted(params))
        _, decoded = decode_component(f"{typ}{{{body}}}")
    else:
        decoded = {}
    try:
        graph.add_node(inst.text, NodeSpec.make(typ, in_ports, out_ports, decoded))
    except GraphitiError as exc:
        raise NetlistError(str(exc), line=inst.line) from exc

    stream.expect("(")
    if stream.peek() is not None and stream.peek().kind == ".":
        while True:
            stream.expect(".")
            port = stream.expect("id", "port name")
            stream.expect("(")
            net = stream.expect("id", "net name")
            stream.expect(")")
            _record_conn(
                graph, inst, port, net, in_ports, out_ports, io_index, wires, drivers, sinks
            )
            if stream.accept(",") is None:
                break
    stream.expect(")")
    stream.expect(";")


def _record_conn(graph, inst, port, net, in_ports, out_ports, io_index, wires, drivers, sinks):
    endpoint = Endpoint(inst.text, port.text)
    if port.text in in_ports:
        direction = "in"
    elif port.text in out_ports:
        direction = "out"
    else:
        raise NetlistError(
            f"instance {inst.text!r} connects unknown port {port.text!r}", line=port.line
        )
    if net.text in io_index:
        io_direction, index = io_index[net.text]
        try:
            if io_direction == "input":
                if direction != "in":
                    raise NetlistError(
                        f"module input {net.text!r} drives output port {endpoint}",
                        line=net.line,
                    )
                graph.mark_input(index, endpoint.node, endpoint.port)
            else:
                if direction != "out":
                    raise NetlistError(
                        f"module output {net.text!r} fed by input port {endpoint}",
                        line=net.line,
                    )
                graph.mark_output(index, endpoint.node, endpoint.port)
        except GraphitiError as exc:
            raise NetlistError(str(exc), line=net.line) from exc
        return
    if net.text not in wires:
        raise NetlistError(f"undeclared net {net.text!r}", line=net.line)
    table = sinks if direction == "in" else drivers
    if net.text in table:
        raise NetlistError(
            f"wire {net.text!r} has two {'sinks' if direction == 'in' else 'drivers'}",
            line=net.line,
        )
    table[net.text] = endpoint
