"""The SAT oracle: DPLL solver correctness and oracle/game agreement.

Two layers: the watched-literal DPLL solver is checked against brute
force on small random formulas, and the refinement encoding is checked
against the weak-simulation game on every library-rule obligation —
including the two rules whose obligations genuinely fail.
"""

import itertools
import random

import pytest

from repro.refinement.sat import (
    DEFAULT_BOUND,
    CnfFormula,
    check_obligation_sat,
    check_refinement_sat,
    cross_check_obligation,
    encode_refinement,
    solve,
)
from repro.rewriting.rules import VERIFY_FACTORY_SPECS, build_rewrite


def formula_of(num_vars, clauses):
    f = CnfFormula()
    for _ in range(num_vars):
        f.new_var()
    for clause in clauses:
        f.add_clause(clause)
    return f


def satisfies(model, clauses):
    return all(
        any(model[abs(lit)] == (lit > 0) for lit in clause) for clause in clauses
    )


# -- the DPLL solver ----------------------------------------------------------


def test_empty_formula_is_sat():
    result = solve(formula_of(0, []))
    assert result.satisfiable and result.model == [False]


def test_empty_clause_is_unsat():
    assert not solve(formula_of(2, [[1], []])).satisfiable


def test_unit_contradiction_is_unsat():
    assert not solve(formula_of(1, [[1], [-1]])).satisfiable


def test_model_satisfies_every_clause():
    clauses = [[1, 2], [-1, 2], [-2, 3], [1, -3]]
    result = solve(formula_of(3, clauses))
    assert result.satisfiable
    assert satisfies(result.model, clauses)


def test_unsat_needs_backtracking():
    # every assignment to (a, c) conflicts; the solver must flip decisions
    clauses = [[1, 2], [1, -2], [-1, 3], [-1, -3]]
    result = solve(formula_of(3, clauses))
    assert not result.satisfiable
    assert result.conflicts >= 1


def test_out_of_range_literal_rejected():
    f = formula_of(2, [])
    with pytest.raises(ValueError, match="outside variable range"):
        f.add_clause([3])
    with pytest.raises(ValueError, match="outside variable range"):
        f.add_clause([0])


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        model = (False,) + bits
        if satisfies(model, clauses):
            return True
    return False


def test_solver_agrees_with_brute_force_on_random_formulas():
    rng = random.Random(0)
    for _ in range(150):
        num_vars = rng.randint(1, 8)
        clauses = [
            [
                rng.choice((1, -1)) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(1, 14))
        ]
        result = solve(formula_of(num_vars, clauses))
        assert result.satisfiable == brute_force_sat(num_vars, clauses), clauses
        if result.satisfiable:
            assert satisfies(result.model, clauses), clauses


# -- the refinement encoding --------------------------------------------------


def obligations_of(factory):
    [spec] = [s for s in VERIFY_FACTORY_SPECS if s[1] == factory]
    rewrite = build_rewrite(*spec)
    return list(rewrite.obligation())


def test_positive_obligation_holds_definitively():
    lhs, rhs, env, stimuli = obligations_of("mux_combine")[0]
    verdict = check_obligation_sat(lhs, rhs, env, stimuli)
    assert verdict.holds and verdict.complete and verdict.definitive
    assert verdict.relation_size >= 1
    assert verdict.pairs_explored > 0
    assert "holds" in verdict.summary()


def test_negative_obligation_fails_definitively():
    lhs, rhs, env, stimuli = obligations_of("branch_combine")[0]
    verdict = check_obligation_sat(lhs, rhs, env, stimuli)
    assert not verdict.holds
    assert verdict.definitive  # UNSAT is definitive even under a bound
    assert verdict.relation_size is None
    assert "fails" in verdict.summary()


def test_truncated_bound_is_indefinite_and_never_disagrees():
    lhs, rhs, env, stimuli = obligations_of("mux_combine")[0]
    verdict = check_obligation_sat(lhs, rhs, env, stimuli, bound=10)
    assert verdict.holds  # optimistically unconstrained beyond the bound
    assert not verdict.complete
    assert not verdict.definitive
    assert "up to bound" in verdict.summary()
    # an indefinite verdict is agreement-by-default: no raise
    report = cross_check_obligation(lhs, rhs, env, stimuli, bound=10)
    assert report.agreed


def test_encoding_is_dual_horn():
    from repro.core.semantics import denote
    from repro.refinement.checker import uniform_stimuli

    lhs, rhs, env, stimuli = obligations_of("mux_combine")[0]
    impl = denote(rhs.lower(), env)
    spec = denote(lhs.lower(), env.with_capacity(4))
    formula, var_of, explored, truncated = encode_refinement(impl, spec, stimuli)
    assert not truncated
    assert explored == len(var_of) > 0
    for clause in formula.clauses:
        assert sum(1 for lit in clause if lit < 0) <= 1


def test_sat_oracle_agrees_with_game_on_every_library_obligation():
    failing_rules = set()
    checked = 0
    for spec in VERIFY_FACTORY_SPECS:
        rewrite = build_rewrite(*spec)
        if rewrite.obligation is None:
            continue
        for lhs, rhs, env, stimuli in rewrite.obligation():
            report = cross_check_obligation(lhs, rhs, env, stimuli)
            checked += 1
            assert report.agreed
            assert report.sat.definitive
            assert report.sat.holds == report.game_holds
            if not report.game_holds:
                failing_rules.add(rewrite.name)
    assert checked >= 10
    # exactly the two rules the paper's checker refuses to certify
    assert failing_rules == {"branch-combine", "join-split-elim"}


def test_default_bound_covers_every_library_obligation():
    # guard against a library rewrite outgrowing the definitive regime
    largest = 0
    for spec in VERIFY_FACTORY_SPECS:
        rewrite = build_rewrite(*spec)
        if rewrite.obligation is None:
            continue
        for lhs, rhs, env, stimuli in rewrite.obligation():
            verdict = check_obligation_sat(lhs, rhs, env, stimuli)
            assert verdict.definitive
            largest = max(largest, verdict.pairs_explored)
    assert largest * 2 < DEFAULT_BOUND
