"""The region purifier: phase 3 of the pipeline (section 3.2).

After the phase-1/2 normalizations a loop has a single Mux and Branch; what
sits between the Mux output and the Branch/condition-fork inputs is the
*body region*.  This module proves the region acts like a pure function by
actually constructing that function: it composes each region node into a
combinator term over the region's input (Operators become ``tup(f)`` after
a Join, Forks become ``dup``, Splits become projections), asks the e-graph
oracle to minimise the term — the paper's use of egg — and replaces the
region with ``Pure{fn=term}; Split``.

A region containing an effectful component (a Store) cannot be composed
and the purifier refuses, which is precisely the check that caught the
bicg miscompilation in the original flow (section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..components import EFFECTFUL_TYPES, split
from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec
from ..errors import RewriteError
from . import algebra, egraph
from .rewrite import Match, Rewrite


class PurityError(RewriteError):
    """The loop body cannot be turned into a Pure component."""


@dataclass
class Region:
    """A loop body region: nodes plus its entry and exit wiring."""

    nodes: list[str]
    entry: Endpoint  # region port fed by the Mux output
    data_exit: Endpoint  # region port feeding the Branch data input
    cond_exit: Endpoint  # region port feeding the condition fork


_PURE_REGION_TYPES = frozenset({"Operator", "Pure", "Fork", "Join", "Split", "Sink"})


def discover_region(graph: ExprHigh, mux: str, branch: str, cond_fork: str) -> Region:
    """Walk forward from the Mux output, stopping at the Branch/cond fork."""
    start = graph.sinks_of(mux, "out0")
    if len(start) != 1:
        raise PurityError(f"mux {mux!r} output fans out unexpectedly")
    entry = start[0]
    stop_nodes = {branch, cond_fork, mux}
    region: list[str] = []
    seen: set[str] = set()
    frontier = [entry.node]
    while frontier:
        node = frontier.pop()
        if node in seen or node in stop_nodes:
            continue
        seen.add(node)
        region.append(node)
        for succ, _, _ in graph.successors(node):
            frontier.append(succ)

    data_sources = [src for src in [graph.source_of(branch, "in0")] if src is not None]
    cond_sources = [src for src in [graph.source_of(cond_fork, "in0")] if src is not None]
    if not data_sources or not cond_sources:
        raise PurityError("loop branch or condition fork is not fully connected")
    data_exit, cond_exit = data_sources[0], cond_sources[0]
    if data_exit.node not in seen or cond_exit.node not in seen:
        raise PurityError("branch data / condition are not produced by the loop body")
    return Region(sorted(region), entry, data_exit, cond_exit)


def check_region_pure(graph: ExprHigh, region: Region) -> None:
    """Refuse regions containing effectful or steering components.

    This check is what blocks the unsound bicg transformation: a Store in
    the loop body means iterations must not be reordered.
    """
    for name in region.nodes:
        typ = graph.nodes[name].typ
        if typ in EFFECTFUL_TYPES:
            raise PurityError(
                f"loop body contains effectful component {name!r} ({typ}); "
                "making this loop out-of-order would reorder memory writes"
            )
        if typ not in _PURE_REGION_TYPES:
            raise PurityError(
                f"loop body contains non-functional component {name!r} ({typ})"
            )


def compose_region(graph: ExprHigh, region: Region, env) -> tuple[str, int]:
    """Compose the region into one combinator term over the region input.

    Returns ``(term, steps)`` where *steps* counts the per-node composition
    rewrites performed (reported in the section 6.3 style statistics).
    The term maps the region's input value to the pair
    ``(branch data, condition)``.
    """
    check_region_pure(graph, region)

    # Terms per output endpoint, relative to the region input value.
    terms: dict[Endpoint, str] = {}
    entry_source = graph.source_of(region.entry.node, region.entry.port)
    pending = list(region.nodes)
    steps = 0

    def input_term(node: str, port: str) -> str | None:
        if Endpoint(node, port) == region.entry:
            return "id"
        source = graph.source_of(node, port)
        if source is None:
            return None
        return terms.get(source)

    progress = True
    while pending and progress:
        progress = False
        for name in list(pending):
            spec = graph.nodes[name]
            ins = [input_term(name, port) for port in spec.in_ports]
            if any(term is None for term in ins):
                continue
            pending.remove(name)
            progress = True
            steps += 1
            _apply_node(terms, name, spec, ins)
    if pending:
        raise PurityError(f"loop body has a cycle through {sorted(pending)}")

    data_term = terms.get(region.data_exit)
    cond_term = terms.get(region.cond_exit)
    if data_term is None or cond_term is None:
        raise PurityError("region outputs were not covered by the composition")
    combined = algebra.comp("dup", algebra.par(data_term, cond_term))
    # A modest e-graph budget: loop bodies with wide fan-out compose into
    # large terms, and matching cost grows quadratically with e-graph size.
    with obs.span("purify:oracle", region_nodes=len(region.nodes)) as sp:
        simplified, rule_log = egraph.simplify_with_log(
            combined, iterations=6, node_limit=3_000
        )
        sp.set(compositions=steps, oracle_rules=len(rule_log))
    algebra.ensure(env, simplified)
    # The oracle's rule applications count as rewrite steps too — they are
    # exactly the Split/Join algebra rewrites the paper replays from egg.
    return simplified, steps + len(rule_log)


def _apply_node(terms: dict[Endpoint, str], name: str, spec: NodeSpec, ins: list[str]) -> None:
    typ = spec.typ
    if typ == "Sink":
        return
    if typ == "Fork":
        for port in spec.out_ports:
            terms[Endpoint(name, port)] = ins[0]
        return
    if typ == "Pure":
        terms[Endpoint(name, "out0")] = algebra.comp(ins[0], str(spec.param("fn")))
        return
    if typ == "Operator":
        op = str(spec.param("op"))
        if len(ins) == 1:
            terms[Endpoint(name, "out0")] = algebra.comp(ins[0], op)
        elif len(ins) == 2:
            fanout = algebra.comp("dup", algebra.par(ins[0], ins[1]))
            terms[Endpoint(name, "out0")] = algebra.comp(fanout, algebra.tup(op))
        else:
            # Fold n-ary operators left: ((a, b), c) consumed by a wrapper.
            fanout = algebra.comp("dup", algebra.par(ins[0], ins[1]))
            for extra in ins[2:]:
                fanout = algebra.comp("dup", algebra.par(fanout, extra))
            terms[Endpoint(name, "out0")] = algebra.comp(fanout, f"untree{len(ins)}({op})")
        return
    if typ == "Join":
        terms[Endpoint(name, "out0")] = algebra.comp("dup", algebra.par(ins[0], ins[1]))
        return
    if typ == "Split":
        terms[Endpoint(name, "out0")] = algebra.comp(ins[0], "fst")
        terms[Endpoint(name, "out1")] = algebra.comp(ins[0], "snd")
        return
    raise PurityError(f"cannot compose component type {typ!r}")


def purify_rewrite(graph: ExprHigh, region: Region, env) -> tuple[Rewrite, Match, int]:
    """Build the computed rewrite replacing *region* by ``Pure; Split``.

    Returns the rewrite, the (trivially located) match, and the number of
    composition steps.  The rewrite's lhs is the region subgraph itself;
    its obligation can be checked like any other (see the GCD tests), which
    is the bounded stand-in for the paper's claim that Pure generation is a
    chain of small verified rewrites.
    """
    term, steps = compose_region(graph, region, env)

    lhs = ExprHigh()
    for name in region.nodes:
        lhs.add_node(name, graph.nodes[name])
    region_set = set(region.nodes)
    # Each internal edge enters exactly one region node, so walking every
    # region node's incoming-edge index covers each edge exactly once
    # without scanning the whole host connection map.
    for name in region.nodes:
        for src, dst in graph.in_edges(name):
            if src.node in region_set:
                lhs.connect(src.node, src.port, dst.node, dst.port)
    lhs.mark_input(0, region.entry.node, region.entry.port)
    lhs.mark_output(0, region.data_exit.node, region.data_exit.port)
    lhs.mark_output(1, region.cond_exit.node, region.cond_exit.port)

    def rhs(match: Match) -> ExprHigh:
        replacement = ExprHigh()
        replacement.add_node(
            "body", NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": term})
        )
        replacement.add_node("bodysplit", split())
        replacement.connect("body", "out0", "bodysplit", "in0")
        replacement.mark_input(0, "body", "in0")
        replacement.mark_output(0, "bodysplit", "out0")
        replacement.mark_output(1, "bodysplit", "out1")
        return replacement

    rewrite = Rewrite(
        name="purify-body",
        lhs=lhs,
        rhs=rhs,
        verified=False,  # per-instance obligations are checked selectively
        obligation=None,
        description="Region composed into a single Pure via the e-graph oracle",
    )
    match = Match(
        nodes={name: name for name in region.nodes},
        params={},
        inputs={0: region.entry},
        outputs={0: region.data_exit, 1: region.cond_exit},
        host_specs={name: graph.nodes[name] for name in region.nodes},
    )
    return rewrite, match, steps
