"""Port names and port maps for the ExprLow graph language.

The paper (section 4.1) defines port names ``I`` as either an I/O port
identified by a single natural number, or a local (internal) name identified
by a pair of strings: an instance name paired with a wire name.  Port maps
``P`` are a pair of finite maps, one for inputs and one for outputs, that
rename a component's canonical ports to the names used in the surrounding
graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Union

from ..errors import PortError


@dataclass(frozen=True, order=True)
class IOPort:
    """An external I/O port, identified by a natural number.

    Dangling wires of a graph — its inputs and outputs — carry these names.
    """

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise PortError(f"I/O port index must be a natural number, got {self.index}")

    def __str__(self) -> str:
        return f"io:{self.index}"


@dataclass(frozen=True, order=True)
class InternalPort:
    """A local port name: an instance name paired with a wire name."""

    instance: str
    wire: str

    def __post_init__(self) -> None:
        if not self.instance or not self.wire:
            raise PortError("internal port requires non-empty instance and wire names")

    def __str__(self) -> str:
        return f"{self.instance}.{self.wire}"


Port = Union[IOPort, InternalPort]


def parse_port(text: str) -> Port:
    """Parse the textual form produced by ``str(port)`` back into a port."""
    if text.startswith("io:"):
        try:
            return IOPort(int(text[3:]))
        except ValueError as exc:
            raise PortError(f"malformed I/O port {text!r}") from exc
    if "." in text:
        instance, _, wire = text.partition(".")
        return InternalPort(instance, wire)
    raise PortError(f"malformed port name {text!r}")


class PortMap(Mapping[Port, Port]):
    """An injective finite map from canonical port names to graph port names.

    A component exposes canonical ports (``io:0``, ``io:1``, ...); the port
    map renames them so the component can be wired into a larger graph.  The
    map must be injective, otherwise two distinct component ports would be
    merged, which has no meaning in the semantics.
    """

    __slots__ = ("_forward", "_backward")

    def __init__(self, entries: Mapping[Port, Port] | Iterable[tuple[Port, Port]] = ()):
        items = list(entries.items()) if isinstance(entries, Mapping) else list(entries)
        forward: dict[Port, Port] = {}
        backward: dict[Port, Port] = {}
        for src, dst in items:
            if src in forward:
                raise PortError(f"duplicate source port {src} in port map")
            if dst in backward:
                raise PortError(f"port map is not injective: {dst} mapped twice")
            forward[src] = dst
            backward[dst] = src
        self._forward = forward
        self._backward = backward

    def __getitem__(self, port: Port) -> Port:
        return self._forward[port]

    def __iter__(self) -> Iterator[Port]:
        return iter(self._forward)

    def __len__(self) -> int:
        return len(self._forward)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PortMap):
            return self._forward == other._forward
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._forward.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{s} -> {d}" for s, d in sorted(self._forward.items(), key=str))
        return f"PortMap({{{inner}}})"

    def inverse(self) -> "PortMap":
        """The inverse map (valid because port maps are injective)."""
        return PortMap({dst: src for src, dst in self._forward.items()})

    def apply(self, port: Port) -> Port:
        """Rename *port*, returning it unchanged when unmapped."""
        return self._forward.get(port, port)

    def targets(self) -> frozenset[Port]:
        return frozenset(self._backward)

    def compose(self, later: "PortMap") -> "PortMap":
        """Return the map equivalent to applying *self* then *later*."""
        return PortMap({src: later.apply(dst) for src, dst in self._forward.items()})


def sequential_map(instance: str, wires: Iterable[str]) -> PortMap:
    """Map canonical ports ``io:0..n-1`` to ``instance.wire`` names in order."""
    return PortMap({IOPort(i): InternalPort(instance, w) for i, w in enumerate(wires)})


def identity_map(arity: int) -> PortMap:
    """The identity port map on the first *arity* canonical I/O ports."""
    return PortMap({IOPort(i): IOPort(i) for i in range(arity)})
