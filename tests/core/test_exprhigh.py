"""Tests for the ExprHigh named graph language and ExprLow round trips."""

import pytest

from repro.components import fork, join, mux, operator, sink
from repro.core.exprhigh import Endpoint, ExprHigh, NodeSpec, lift
from repro.errors import GraphError


def fork_mod_graph():
    """The figure 6 example: a fork feeding a modulo operator."""
    g = ExprHigh()
    g.add_node("f", fork(2))
    g.add_node("m", operator("mod", 2))
    g.connect("f", "out0", "m", "in0")
    g.mark_input(0, "f", "in0")
    g.mark_input(1, "m", "in1")
    g.mark_output(0, "f", "out1")
    g.mark_output(1, "m", "out0")
    return g


class TestConstruction:
    def test_duplicate_node_rejected(self):
        g = ExprHigh()
        g.add_node("a", fork(2))
        with pytest.raises(GraphError):
            g.add_node("a", fork(2))

    def test_connect_unknown_port_rejected(self):
        g = ExprHigh()
        g.add_node("a", fork(2))
        g.add_node("b", sink())
        with pytest.raises(GraphError):
            g.connect("a", "nope", "b", "in0")

    def test_double_connect_input_rejected(self):
        g = ExprHigh()
        g.add_node("a", fork(2))
        g.add_node("b", sink())
        g.connect("a", "out0", "b", "in0")
        with pytest.raises(GraphError):
            g.connect("a", "out1", "b", "in0")

    def test_double_connect_output_rejected(self):
        g = ExprHigh()
        g.add_node("a", fork(2))
        g.add_node("b", sink())
        g.add_node("c", sink())
        g.connect("a", "out0", "b", "in0")
        with pytest.raises(GraphError):
            g.connect("a", "out0", "c", "in0")

    def test_validate_detects_loose_ports(self):
        g = ExprHigh()
        g.add_node("a", fork(2))
        with pytest.raises(GraphError):
            g.validate()

    def test_mark_connected_port_as_input_rejected(self):
        g = ExprHigh()
        g.add_node("a", fork(2))
        g.add_node("b", sink())
        g.connect("a", "out0", "b", "in0")
        with pytest.raises(GraphError):
            g.mark_input(0, "b", "in0")


class TestQueries:
    def test_source_and_sinks(self):
        g = fork_mod_graph()
        assert g.source_of("m", "in0") == Endpoint("f", "out0")
        assert g.sinks_of("f", "out0") == [Endpoint("m", "in0")]
        assert g.source_of("f", "in0") is None

    def test_successors_predecessors(self):
        g = fork_mod_graph()
        succs = list(g.successors("f"))
        assert [s[0] for s in succs] == ["m"]
        preds = list(g.predecessors("m"))
        assert [p[0] for p in preds] == ["f"]


class TestMutation:
    def test_remove_node_clears_connections(self):
        g = fork_mod_graph()
        g.remove_node("m")
        assert all(dst.node != "m" and src.node != "m" for dst, src in g.connections.items())
        assert 1 not in g.inputs

    def test_rename_node_updates_everything(self):
        g = fork_mod_graph()
        g.rename_node("f", "fork0")
        assert "fork0" in g.nodes
        assert g.source_of("m", "in0") == Endpoint("fork0", "out0")
        assert g.inputs[0] == Endpoint("fork0", "in0")

    def test_fresh_name(self):
        g = fork_mod_graph()
        assert g.fresh_name("f") == "f_1"
        assert g.fresh_name("new") == "new"

    def test_copy_is_independent(self):
        g = fork_mod_graph()
        clone = g.copy()
        clone.remove_node("m")
        assert "m" in g.nodes

    def test_disconnect_returns_source(self):
        g = fork_mod_graph()
        src = g.disconnect("m", "in0")
        assert src == Endpoint("f", "out0")
        assert g.source_of("m", "in0") is None

    def test_replace_spec_swaps_params_in_place(self):
        g = fork_mod_graph()
        g.replace_spec("m", g.nodes["m"].with_params(tagged=True))
        assert g.nodes["m"].param("tagged") is True
        assert g.source_of("m", "in0") == Endpoint("f", "out0")
        assert g.nodes_of_type("Operator") == ["m"]

    def test_replace_spec_rejects_dropping_connected_port(self):
        g = fork_mod_graph()
        narrower = NodeSpec.make("Operator", ["in1"], ["out0"], {"op": "mod"})
        with pytest.raises(GraphError):
            g.replace_spec("m", narrower)
        assert g.nodes["m"].in_ports == ("in0", "in1")


def _snapshot(g):
    return (
        dict(g.nodes),
        dict(g.connections),
        dict(g.inputs),
        dict(g.outputs),
        {typ: list(names) for typ, names in g._by_type.items()},
        {n: list(e) for n, e in g._out_edges.items()},
        {n: list(e) for n, e in g._in_edges.items()},
        dict(g._rev),
    )


class TestAtomicity:
    """Failed mutations must leave the graph and all indexes untouched."""

    def test_failed_rename_leaves_graph_unchanged(self):
        g = fork_mod_graph()
        before = _snapshot(g)
        with pytest.raises(GraphError):
            g.rename_node("f", "m")  # target name already in use
        with pytest.raises(GraphError):
            g.rename_node("ghost", "anything")  # unknown source
        assert _snapshot(g) == before

    def test_failed_remove_leaves_graph_unchanged(self):
        g = fork_mod_graph()
        before = _snapshot(g)
        with pytest.raises(GraphError):
            g.remove_node("ghost")
        assert _snapshot(g) == before

    def test_failed_replace_spec_leaves_graph_unchanged(self):
        g = fork_mod_graph()
        before = _snapshot(g)
        with pytest.raises(GraphError):
            g.replace_spec("m", NodeSpec.make("Operator", [], [], {}))
        with pytest.raises(GraphError):
            g.replace_spec("ghost", fork(2))
        assert _snapshot(g) == before

    def test_successful_rename_keeps_indexes_consistent(self):
        g = fork_mod_graph()
        g.rename_node("f", "fork0")
        rebuilt = ExprHigh(
            nodes=dict(g.nodes),
            connections=dict(g.connections),
            inputs=dict(g.inputs),
            outputs=dict(g.outputs),
        )
        assert _snapshot(g)[4:] == _snapshot(rebuilt)[4:]


class TestLowerLift:
    def test_lower_produces_expected_size(self):
        low = fork_mod_graph().lower()
        assert low.size() == 2
        assert len(list(low.connections())) == 1

    def test_lift_round_trips_structure(self):
        g = fork_mod_graph()
        lifted = lift(g.lower())
        assert set(lifted.nodes) == set(g.nodes)
        assert len(lifted.connections) == len(g.connections)
        assert set(lifted.inputs) == set(g.inputs)
        assert set(lifted.outputs) == set(g.outputs)

    def test_lift_recovers_params(self):
        g = fork_mod_graph()
        lifted = lift(g.lower())
        assert lifted.nodes["m"].param("op") == "mod"
        assert lifted.nodes["f"].param("n") == 2

    def test_lower_with_custom_order(self):
        g = fork_mod_graph()
        low = g.lower(node_order=["m", "f"])
        assert [b for b in low.bases()][0].typ.startswith("Operator")

    def test_lower_rejects_bad_order(self):
        g = fork_mod_graph()
        with pytest.raises(GraphError):
            g.lower(node_order=["m"])

    def test_double_round_trip_is_stable(self):
        g = fork_mod_graph()
        once = lift(g.lower())
        twice = lift(once.lower())
        assert set(twice.nodes) == set(once.nodes)
        assert twice.lower() == once.lower()


class TestNodeSpec:
    def test_param_access(self):
        spec = mux(type="i32")
        assert spec.param("type") == "i32"
        assert spec.param("missing", 42) == 42

    def test_with_params_merges(self):
        spec = join().with_params(type="i32")
        assert spec.param("type") == "i32"

    def test_specs_are_hashable(self):
        assert hash(NodeSpec.make("X", ["a"], ["b"], {"k": 1}))
