"""Tests for the five-phase Graphiti pipeline on compiled kernels."""

from collections import Counter

import numpy as np
import pytest

from repro.components import default_environment
from repro.hls.frontend import compile_program
from repro.hls.ir import BinOp, DoWhile, Kernel, Load, OuterLoop, Program, StoreOp, UnOp, Var
from repro.rewriting.pipeline import GraphitiPipeline, remove_identity_wires
from repro.rewriting.purify import PurityError, compose_region, discover_region


def gcd_program(n=4):
    loop = DoWhile(
        "gcd",
        ("a", "b", "i"),
        {"a": Var("b"), "b": BinOp("mod", Var("a"), Var("b")), "i": Var("i")},
        UnOp("ne0", Var("b")),
        ("a", "i"),
    )
    kernel = Kernel(
        "gcd",
        loop,
        (OuterLoop("i", n),),
        {"a": Load("arr1", Var("i")), "b": Load("arr2", Var("i")), "i": Var("i")},
        (StoreOp("result", Var("i"), Var("a")),),
        tags=4,
    )
    return Program(
        "gcd",
        {
            "arr1": np.array([12, 18, 7, 100], dtype=np.int64),
            "arr2": np.array([8, 27, 13, 75], dtype=np.int64),
            "result": np.zeros(n, dtype=np.int64),
        },
        [kernel],
    )


@pytest.fixture
def compiled_gcd():
    env = default_environment()
    program = gcd_program()
    compiled = compile_program(program, env)
    return env, compiled.kernels[0]


class TestFullPipeline:
    def test_transforms_gcd_loop(self, compiled_gcd):
        env, ck = compiled_gcd
        result = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        assert result.transformed
        assert result.refusal is None
        types = Counter(spec.typ for spec in result.graph.nodes.values())
        assert types["Mux"] == 0
        assert types["Init"] == 0
        assert types["Merge"] == 1
        assert types["Tagger"] == 1
        assert types["Branch"] == 1
        result.graph.validate()

    def test_tagger_carries_requested_tags(self, compiled_gcd):
        env, ck = compiled_gcd
        result = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        taggers = [s for s in result.graph.nodes.values() if s.typ == "Tagger"]
        assert taggers[0].param("tags") == ck.mark.tags

    def test_body_expanded_in_tagged_form(self, compiled_gcd):
        env, ck = compiled_gcd
        result = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        tagged_ops = [
            name
            for name, spec in result.graph.nodes.items()
            if spec.typ == "Operator" and spec.param("tagged")
        ]
        assert len(tagged_ops) == 2  # the mod and the ne0 of the GCD body

    def test_statistics_recorded(self, compiled_gcd):
        env, ck = compiled_gcd
        result = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        assert result.rewrites_applied > 5
        assert result.composition_steps > 0
        assert result.total_steps == result.rewrites_applied + result.composition_steps

    def test_verified_core_with_unverified_minors(self, compiled_gcd):
        """Like the paper: the loop rewrite is verified, some cleanup is not."""
        env, ck = compiled_gcd
        pipeline = GraphitiPipeline(env)
        pipeline.transform_kernel(ck.graph, ck.mark)
        names = {a.rewrite: a.verified for a in pipeline.engine.log}
        assert names["ooo-loop"] is True
        assert names["mux-combine"] is True
        assert names["purify-body"] is False  # checked selectively, not by default
        assert 0.0 < pipeline.engine.verified_fraction() <= 1.0


class TestCheckedPipeline:
    def test_pipeline_with_inline_obligation_checking(self, compiled_gcd):
        """check_obligations=True discharges every verified rewrite's
        obligation before its first application — the fully-checked flow."""
        env, ck = compiled_gcd
        pipeline = GraphitiPipeline(env, check_obligations=True)
        result = pipeline.transform_kernel(ck.graph, ck.mark)
        assert result.transformed
        # The engine must have discharged at least mux-combine and ooo-loop.
        assert {"mux-combine", "ooo-loop"} <= pipeline.engine._discharged

    def test_pipeline_output_is_well_typed(self, compiled_gcd):
        """check_types=True: the transformed graph passes the section 6.3
        well-typedness deduction (tags wrap consistently everywhere)."""
        env, ck = compiled_gcd
        pipeline = GraphitiPipeline(env, check_types=True)
        result = pipeline.transform_kernel(ck.graph, ck.mark)
        assert result.transformed


class TestEffectfulRefusal:
    def test_store_in_body_is_refused(self):
        env = default_environment()
        loop = DoWhile(
            "acc",
            ("s", "j"),
            {"s": BinOp("add", Var("s"), Var("j")), "j": BinOp("add", Var("j"), Var("j"))},
            UnOp("ne0", Var("j")),
            ("s",),
            stores=(StoreOp("out", Var("j"), Var("s")),),
        )
        kernel = Kernel(
            "acc",
            loop,
            (OuterLoop("i", 2),),
            {"s": Load("data", Var("i")), "j": Load("data", Var("i"))},
            tags=2,
        )
        program = Program("acc", {"data": np.array([1, 2]), "out": np.zeros(4)}, [kernel])
        compiled = compile_program(program, env)
        ck = compiled.kernels[0]
        result = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        assert not result.transformed
        assert "stores" in result.refusal
        # The refused graph is the input, untouched.
        assert result.graph is ck.graph


class TestIdentityWireRemoval:
    def test_removes_id_pures(self):
        from repro.components import pure
        from repro.core.exprhigh import ExprHigh

        g = ExprHigh()
        g.add_node("a", pure("incr"))
        g.add_node("w", pure("id"))
        g.add_node("b", pure("incr"))
        g.connect("a", "out0", "w", "in0")
        g.connect("w", "out0", "b", "in0")
        g.mark_input(0, "a", "in0")
        g.mark_output(0, "b", "out0")
        cleaned = remove_identity_wires(g)
        assert "w" not in cleaned.nodes
        assert cleaned.source_of("b", "in0").node == "a"

    def test_keeps_tagged_id(self):
        from repro.core.exprhigh import ExprHigh, NodeSpec

        g = ExprHigh()
        g.add_node("a", NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": "incr"}))
        g.add_node("w", NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": "id", "tagged": True}))
        g.connect("a", "out0", "w", "in0")
        g.mark_input(0, "a", "in0")
        g.mark_output(0, "w", "out0")
        cleaned = remove_identity_wires(g)
        assert "w" in cleaned.nodes

    def test_keeps_boundary_id(self):
        from repro.components import pure
        from repro.core.exprhigh import ExprHigh

        g = ExprHigh()
        g.add_node("w", pure("id"))
        g.mark_input(0, "w", "in0")
        g.mark_output(0, "w", "out0")
        cleaned = remove_identity_wires(g)
        assert "w" in cleaned.nodes  # nothing to fuse through


class TestPurifier:
    def test_gcd_region_composes_to_working_function(self, compiled_gcd):
        env, ck = compiled_gcd
        pipeline = GraphitiPipeline(env)
        result = pipeline.transform_kernel(ck.graph, ck.mark)
        assert result.transformed
        # The composed function must implement one GCD step on the nested
        # loop value. The loop state after combining is ((a, b), i).
        pure_fns = [
            str(spec.param("fn"))
            for spec in result.graph.nodes.values()
            if spec.typ == "Pure" and spec.param("tagged")
        ]
        # After expansion the body is expanded back; the composed function
        # only lives in the engine log. Re-derive it through the purifier on
        # a fresh pipeline run instead:
        env2 = default_environment()
        from repro.hls.frontend import compile_program

        compiled = compile_program(gcd_program(), env2)
        ck2 = compiled.kernels[0]
        from repro.rewriting.engine import RewriteEngine
        from repro.rewriting.rules import combine, reduction
        from repro.rewriting.pipeline import remove_identity_wires

        engine = RewriteEngine()
        g = engine.apply_exhaustively(
            ck2.graph, [combine.mux_combine(), combine.branch_combine()]
        )
        while True:
            before = engine.stats.rewrites_applied
            g = engine.apply_exhaustively(
                g,
                [reduction.split_join_elim(), reduction.fork_sink_elim(), reduction.pure_id_elim()],
            )
            nodes_before = len(g.nodes)
            g = remove_identity_wires(g)
            if engine.stats.rewrites_applied == before and len(g.nodes) == nodes_before:
                break
        mux = [n for n, s in g.nodes.items() if s.typ == "Mux"][0]
        branch = [n for n, s in g.nodes.items() if s.typ == "Branch"][0]
        init_node = [n for n, s in g.nodes.items() if s.typ == "Init"][0]
        cond_fork = g.source_of(init_node, "in0").node
        region = discover_region(g, mux, branch, cond_fork)
        term, steps = compose_region(g, region, env2)
        fn = env2.function(term)
        # One GCD step on ((a, b), i): new value ((b, a mod b), i), continue
        # while the new remainder is non-zero.
        value, cond = fn(((12, 8), 0))
        assert value == ((8, 4), 0)
        assert cond is True
        value, cond = fn(((8, 4), 0))
        assert value == ((4, 0), 0)
        assert cond is False

    def test_effectful_region_raises(self):
        from repro.components import store
        from repro.core.exprhigh import ExprHigh
        from repro.rewriting.purify import Region, check_region_pure

        g = ExprHigh()
        g.add_node("st", store())
        with pytest.raises(PurityError):
            check_region_pure(g, Region(["st"], None, None, None))
