"""Table/figure builders: regenerate every row the paper reports.

Each builder takes the measured :class:`~repro.eval.runner.BenchmarkResult`
objects and prints the same rows as the paper's Table 2, Table 3 and
Figure 8, side by side with the published values, plus the shape checks
(orderings and rough factors) that define reproduction success.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from . import paper_data
from .runner import BenchmarkResult

FLOWS = paper_data.FLOWS


@dataclass
class TableRow:
    benchmark: str
    values: dict[str, float]
    paper: dict[str, float]


@dataclass
class Table:
    title: str
    rows: list[TableRow] = field(default_factory=list)

    def geomean_row(self) -> TableRow:
        values = {
            flow: paper_data.geomean([row.values[flow] for row in self.rows])
            for flow in FLOWS
        }
        paper = {
            flow: paper_data.geomean([row.paper[flow] for row in self.rows])
            for flow in FLOWS
        }
        return TableRow("geomean", values, paper)

    def render(self) -> str:
        lines = [self.title, "=" * len(self.title)]
        header = f"{'benchmark':14s}" + "".join(
            f"{flow + ' (meas/paper)':>28s}" for flow in FLOWS
        )
        lines.append(header)
        for row in self.rows + [self.geomean_row()]:
            cells = []
            for flow in FLOWS:
                measured, published = row.values[flow], row.paper[flow]
                cells.append(f"{measured:>13.4g}/{published:<12.4g}")
            lines.append(f"{row.benchmark:14s}" + " ".join(cells))
        return "\n".join(lines)


def build_table(
    title: str,
    results: Mapping[str, BenchmarkResult],
    measure: Callable,
    paper_table: Mapping[str, Mapping[str, float]],
) -> Table:
    table = Table(title)
    for name in paper_data.BENCHMARKS:
        if name not in results:
            continue
        result = results[name]
        table.rows.append(
            TableRow(
                benchmark=name,
                values={flow: float(measure(result[flow])) for flow in FLOWS},
                paper={flow: float(paper_table[name][flow]) for flow in FLOWS},
            )
        )
    return table


def cycle_table(results: Mapping[str, BenchmarkResult]) -> Table:
    """Table 2, cycle counts."""
    return build_table(
        "Table 2a — cycle count", results, lambda fr: fr.cycles, paper_data.PAPER_CYCLES
    )


def clock_table(results: Mapping[str, BenchmarkResult]) -> Table:
    """Table 2, clock period."""
    return build_table(
        "Table 2b — clock period (ns)",
        results,
        lambda fr: fr.area.clock_period,
        paper_data.PAPER_CLOCK_PERIOD,
    )


def exec_time_table(results: Mapping[str, BenchmarkResult]) -> Table:
    """Table 2, execution time."""
    return build_table(
        "Table 2c — execution time (ns)",
        results,
        lambda fr: fr.execution_time,
        paper_data.PAPER_EXEC_TIME,
    )


def lut_table(results: Mapping[str, BenchmarkResult]) -> Table:
    return build_table("Table 3a — LUTs", results, lambda fr: fr.area.luts, paper_data.PAPER_LUTS)


def ff_table(results: Mapping[str, BenchmarkResult]) -> Table:
    return build_table("Table 3b — FFs", results, lambda fr: fr.area.ffs, paper_data.PAPER_FFS)


def dsp_table(results: Mapping[str, BenchmarkResult]) -> Table:
    return build_table("Table 3c — DSPs", results, lambda fr: fr.area.dsps, paper_data.PAPER_DSPS)


def figure8_series(results: Mapping[str, BenchmarkResult]) -> dict[str, dict[str, float]]:
    """Figure 8: per-benchmark execution time normalised to DF-OoO.

    Returns ``{benchmark: {flow: relative_time}}`` — the series the paper
    plots (values < 1 are faster than DF-OoO).
    """
    series: dict[str, dict[str, float]] = {}
    for name, result in results.items():
        base = result["DF-OoO"].execution_time
        series[name] = {
            flow: result[flow].execution_time / base if base else float("nan")
            for flow in FLOWS
        }
    return series


def render_figure8(results: Mapping[str, BenchmarkResult]) -> str:
    series = figure8_series(results)
    lines = ["Figure 8 — execution time relative to DF-OoO (lower is better)"]
    lines.append(f"{'benchmark':14s}" + "".join(f"{flow:>12s}" for flow in FLOWS))
    for name in paper_data.BENCHMARKS:
        if name not in series:
            continue
        row = series[name]
        lines.append(f"{name:14s}" + "".join(f"{row[flow]:>12.3f}" for flow in FLOWS))
    return "\n".join(lines)


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper, tested on measured data."""

    description: str
    holds: bool
    detail: str = ""


def shape_checks(results: Mapping[str, BenchmarkResult]) -> list[ShapeCheck]:
    """The paper's headline claims, evaluated on the measured numbers."""
    checks: list[ShapeCheck] = []

    def geomean_exec(flow: str) -> float:
        return paper_data.geomean(
            [results[n][flow].execution_time for n in results]
        )

    if results:
        g, io, v, ooo = (
            geomean_exec("GRAPHITI"),
            geomean_exec("DF-IO"),
            geomean_exec("Vericert"),
            geomean_exec("DF-OoO"),
        )
        checks.append(
            ShapeCheck(
                "Graphiti beats the in-order flow (paper: 2.1x geomean)",
                io / g > 1.3,
                f"measured {io / g:.2f}x",
            )
        )
        checks.append(
            ShapeCheck(
                "Graphiti beats Vericert (paper: 5.8x geomean)",
                v / g > 1.5,
                f"measured {v / g:.2f}x",
            )
        )
        checks.append(
            ShapeCheck(
                "Graphiti is on par with unverified DF-OoO (within 2x)",
                0.5 < g / ooo < 2.0,
                f"measured ratio {g / ooo:.2f}",
            )
        )
    if "bicg" in results:
        bicg = results["bicg"]
        checks.append(
            ShapeCheck(
                "bicg: Graphiti refuses the rewrite and matches DF-IO",
                bicg["GRAPHITI"].cycles == bicg["DF-IO"].cycles
                and bicg["GRAPHITI"].refused_loops > 0,
                f"GRAPHITI {bicg['GRAPHITI'].cycles} vs DF-IO {bicg['DF-IO'].cycles}",
            )
        )
        checks.append(
            ShapeCheck(
                "bicg: DF-OoO reorders the in-body stores (the found bug)",
                not bicg["DF-OoO"].stores_in_order,
                f"stores_in_order={bicg['DF-OoO'].stores_in_order}",
            )
        )
    if "gsum-single" in results:
        single = results["gsum-single"]
        checks.append(
            ShapeCheck(
                "gsum-single does not benefit from tagging",
                single["GRAPHITI"].cycles >= single["DF-IO"].cycles,
                f"GRAPHITI {single['GRAPHITI'].cycles} vs DF-IO {single['DF-IO'].cycles}",
            )
        )
    for name, result in results.items():
        checks.append(
            ShapeCheck(
                f"{name}: tagged circuits cost more FFs than DF-IO"
                if name != "bicg"
                else f"{name}: refused circuit matches DF-IO area",
                (result["GRAPHITI"].area.ffs >= result["DF-IO"].area.ffs),
                f"GRAPHITI {result['GRAPHITI'].area.ffs} vs DF-IO {result['DF-IO'].area.ffs}",
            )
        )
        checks.append(
            ShapeCheck(
                f"{name}: Vericert is the area winner",
                result["Vericert"].area.luts < result["DF-IO"].area.luts,
                f"Vericert {result['Vericert'].area.luts} vs DF-IO {result['DF-IO'].area.luts} LUTs",
            )
        )
        checks.append(
            ShapeCheck(
                f"{name}: Vericert has the best clock period",
                result["Vericert"].area.clock_period
                <= min(result[f].area.clock_period for f in ("DF-IO", "DF-OoO", "GRAPHITI")),
                f"Vericert {result['Vericert'].area.clock_period}ns",
            )
        )
    return checks


def full_report(results: Mapping[str, BenchmarkResult]) -> str:
    """Everything: Tables 2–3, Figure 8 and the shape checks."""
    parts = [
        cycle_table(results).render(),
        clock_table(results).render(),
        exec_time_table(results).render(),
        lut_table(results).render(),
        ff_table(results).render(),
        dsp_table(results).render(),
        render_figure8(results),
        "",
        "Shape checks",
        "============",
    ]
    for check in shape_checks(results):
        status = "PASS" if check.holds else "FAIL"
        parts.append(f"[{status}] {check.description} — {check.detail}")
    return "\n\n".join(parts[:7]) + "\n" + "\n".join(parts[7:])
