"""Executable weak-simulation checking (definitions 4.1–4.5 of the paper).

The paper proves refinements ``m ⊑ m'`` in Lean by exhibiting a simulation
relation φ.  Here, for *bounded* instances (finite stimulus domains, bounded
queues), we *decide* the existence of a weak simulation by solving the
simulation game restricted to product-reachable pairs:

* positions are pairs (impl state, spec state), starting from all pairs of
  initial states;
* for every implementation move (input with a stimulus value, output,
  internal step) the game records the set of *spec responses* permitted by
  the corresponding diagram;
* a position is losing if some implementation move has no winning response;
  losing positions propagate backwards through a worklist (each position
  knows which predecessor moves depend on it) until no further position
  falls.

Restricting to product-reachable pairs is sound and complete for deciding
whether the initial states are simulated, because every witness pair that a
diagram could use is itself product-reachable.

The three simulation diagrams keep the paper's asymmetry:

* **input** transitions may be followed by internal steps in the spec;
* **output** transitions may be *preceded* by internal steps in the spec,
  but not followed — connecting ports fuses an output to an input with no
  internal step in between (section 4.5), so allowing trailing internal
  steps would make the connect combinator unsound;
* **internal** transitions map to zero or more internal steps.

Success yields a :class:`SimulationCertificate` whose relation (the winning
positions) is a genuine weak simulation containing the initial pairs;
failure yields a counterexample with the violated diagram.

Certificates are *persistent evidence*: they serialise (``to_dict`` /
``from_dict``) with a stable content hash, and
:func:`recheck_certificate` re-validates every simulation diagram of a
stored relation in a single O(relation) pass — no game solving, no
exploration of losing positions — so a cached certificate is dramatically
cheaper to re-establish than a fresh search, while remaining independently
checkable evidence (a tampered or stale certificate is rejected, never
trusted).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.module import Module, State, Value
from ..core.ports import Port, parse_port
from ..errors import CertificateError, RefinementError, SemanticsError

Stimuli = Mapping[Port, Iterable[Value]]

#: Bump when the serialised certificate layout changes; older stored
#: certificates then fail :meth:`SimulationCertificate.from_dict` and the
#: caller falls back to a fresh search.
CERTIFICATE_FORMAT = 1


# -- state (de)serialisation --------------------------------------------------
#
# Module states are arbitrary hashable values built from tuples, frozensets
# and scalar leaves (the queue/product combinators only ever nest tuples and
# frozensets).  JSON cannot represent tuples or frozensets natively, and
# bool/int must not be conflated, so every value is encoded as a small
# tagged list; decoding is the exact inverse, giving ``decode(encode(s)) ==
# s`` for every state the semantics can produce.


def encode_state(value) -> object:
    """Encode a module state (or stimulus value) as JSON-serialisable data."""
    if value is None:
        return ["z"]
    if isinstance(value, bool):  # before int: bool is an int subclass
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, tuple):
        return ["t", [encode_state(item) for item in value]]
    if isinstance(value, frozenset):
        encoded = [encode_state(item) for item in value]
        encoded.sort(key=lambda item: json.dumps(item, separators=(",", ":")))
        return ["fs", encoded]
    raise CertificateError(
        f"cannot serialise state component of type {type(value).__name__!r}"
    )


def decode_state(data) -> object:
    """Invert :func:`encode_state`; raises :class:`CertificateError` on junk."""
    try:
        tag = data[0]
        if tag == "z":
            return None
        if tag in ("b", "i", "f", "s"):
            value = data[1]
            expected = {"b": bool, "i": int, "f": float, "s": str}[tag]
            if type(value) is not expected and not (tag == "f" and type(value) is int):
                raise CertificateError(f"tag {tag!r} carries a {type(value).__name__}")
            return float(value) if tag == "f" else value
        if tag == "t":
            return tuple(decode_state(item) for item in data[1])
        if tag == "fs":
            return frozenset(decode_state(item) for item in data[1])
    except (IndexError, TypeError, KeyError) as exc:
        raise CertificateError(f"malformed encoded state {data!r}") from exc
    raise CertificateError(f"unknown state tag in {data!r}")


def _canonical(data: object) -> str:
    return json.dumps(data, separators=(",", ":"), sort_keys=True)


def _hash_encoded(
    impl_table: list,
    spec_table: list,
    relation_rows: list,
    stimuli_rows: list,
    impl_states: int,
    spec_states: int,
) -> str:
    """SHA-256 over already-encoded certificate content.

    Shared by :meth:`SimulationCertificate.content_hash` (which encodes
    once and memoises) and :meth:`SimulationCertificate.from_dict` (which
    hashes the stored tables/rows directly, so integrity checking never
    pays a decode-then-re-encode round trip)."""
    digest = hashlib.sha256()
    digest.update(str(CERTIFICATE_FORMAT).encode())
    digest.update(_canonical(impl_table).encode())
    digest.update(_canonical(spec_table).encode())
    digest.update(_canonical(relation_rows).encode())
    digest.update(_canonical(stimuli_rows).encode())
    digest.update(f"{int(impl_states)},{int(spec_states)}".encode())
    return digest.hexdigest()


def _encode_stimuli(stimuli: Stimuli) -> list:
    rows = [
        [str(port), [encode_state(value) for value in values]]
        for port, values in stimuli.items()
    ]
    rows.sort(key=lambda row: row[0])
    return rows


def _intern(states) -> tuple[list, dict]:
    """Encode each distinct state once: ``(sorted_table, state -> index)``."""
    encoded = [(encode_state(state), state) for state in states]
    encoded.sort(key=lambda item: _canonical(item[0]))
    table = [row for row, _ in encoded]
    index = {state: position for position, (_, state) in enumerate(encoded)}
    return table, index


def _decode_stimuli(rows) -> dict[Port, tuple[Value, ...]]:
    try:
        return {
            parse_port(name): tuple(decode_state(value) for value in values)
            for name, values in rows
        }
    except (TypeError, ValueError) as exc:
        raise CertificateError(f"malformed stimuli encoding: {exc}") from exc


@dataclass(frozen=True)
class Violation:
    """Why the simulation game is lost from some position."""

    kind: str  # "input" | "output" | "internal" | "interface" | "init"
    impl_state: State
    spec_state: State | None
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} diagram fails: {self.detail}"


@dataclass
class SimulationCertificate:
    """A checked simulation relation between an implementation and a spec.

    The certificate is self-contained evidence of ``impl ⊑ spec`` on one
    bounded instance: the winning relation, the stimulus domain it was
    decided under, and bookkeeping counts.  It serialises losslessly
    (``to_dict``/``from_dict``) and carries a stable SHA-256 content hash,
    so it can be persisted in the content-addressed result cache or dumped
    to a file and independently re-validated later with
    :func:`recheck_certificate`.
    """

    relation: frozenset[tuple[State, State]]
    impl_states: int
    spec_states: int
    iterations: int
    stimuli: dict[Port, tuple[Value, ...]] = field(default_factory=dict)
    # Memoised canonical encoding and content hash: the relation repeats the
    # same few hundred distinct states across tens of thousands of pairs, so
    # the encoding interns each state once into a table and stores the
    # relation as index pairs — and every consumer (to_dict, the cache
    # write, provenance hashes in worker results) shares one encoding pass.
    _encoded: tuple | None = field(
        default=None, repr=False, compare=False, kw_only=True
    )
    _hash: str | None = field(default=None, repr=False, compare=False, kw_only=True)

    def related(self, impl_state: State, spec_state: State) -> bool:
        return (impl_state, spec_state) in self.relation

    # -- serialisation -------------------------------------------------------

    def _encoded_parts(self) -> tuple[list, list, list]:
        """``(impl_table, spec_table, relation_rows)`` — the interned encoding.

        Each distinct state is encoded once into a canonically ordered
        table; the relation is the list of ``[impl_index, spec_index]``
        pairs, sorted.  Dramatically smaller (and faster to parse back)
        than encoding both full states per pair.
        """
        if self._encoded is None:
            impl_table, impl_index = _intern({s for s, _ in self.relation})
            spec_table, spec_index = _intern({t for _, t in self.relation})
            rows = sorted([impl_index[s], spec_index[t]] for s, t in self.relation)
            self._encoded = (impl_table, spec_table, rows)
        return self._encoded

    def content_hash(self) -> str:
        """A stable SHA-256 over the certificate's semantic content.

        Covers the state tables and relation rows (canonically ordered),
        the stimuli, the state counts and the format version — everything
        ``from_dict`` restores — so equal certificates hash equally
        regardless of construction order, and any tampering with a
        serialised certificate is detectable before the diagrams are even
        re-checked.
        """
        if self._hash is None:
            impl_table, spec_table, rows = self._encoded_parts()
            self._hash = _hash_encoded(
                impl_table,
                spec_table,
                rows,
                _encode_stimuli(self.stimuli),
                self.impl_states,
                self.spec_states,
            )
        return self._hash

    def to_dict(self) -> dict:
        impl_table, spec_table, rows = self._encoded_parts()
        return {
            "kind": "SimulationCertificate",
            "format": CERTIFICATE_FORMAT,
            "impl_table": impl_table,
            "spec_table": spec_table,
            "relation": rows,
            "stimuli": _encode_stimuli(self.stimuli),
            "impl_states": int(self.impl_states),
            "spec_states": int(self.spec_states),
            "iterations": int(self.iterations),
            "hash": self.content_hash(),
        }

    def summary(self) -> str:
        return (
            f"certificate: {len(self.relation)} related pairs "
            f"({self.impl_states} impl / {self.spec_states} spec states), "
            f"hash {self.content_hash()[:12]}"
        )

    @classmethod
    def from_dict(cls, data: object) -> "SimulationCertificate":
        """Rebuild a certificate; raises :class:`CertificateError` when the
        payload is malformed, from a different format version, or fails its
        embedded content hash (tamper/corruption detection)."""
        if not isinstance(data, dict):
            raise CertificateError(f"certificate payload is {type(data).__name__}, not a dict")
        if data.get("format") != CERTIFICATE_FORMAT:
            raise CertificateError(
                f"certificate format {data.get('format')!r} != {CERTIFICATE_FORMAT}"
            )
        try:
            impl_table = list(data["impl_table"])
            spec_table = list(data["spec_table"])
            rows = [[int(i), int(j)] for i, j in data["relation"]]
            stimuli_rows = sorted(data["stimuli"], key=lambda row: row[0])
            actual = _hash_encoded(
                impl_table,
                spec_table,
                rows,
                stimuli_rows,
                data["impl_states"],
                data["spec_states"],
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise CertificateError(f"malformed certificate payload: {exc}") from exc
        stored = data.get("hash")
        if stored != actual:
            raise CertificateError(
                f"certificate hash mismatch: stored {str(stored)[:12]}…, "
                f"content {actual[:12]}… (tampered or corrupted)"
            )
        try:
            impl_states_by_index = [decode_state(row) for row in impl_table]
            spec_states_by_index = [decode_state(row) for row in spec_table]
            if any(i < 0 or j < 0 for i, j in rows):
                raise ValueError("negative state-table index")
            relation = frozenset(
                (impl_states_by_index[i], spec_states_by_index[j]) for i, j in rows
            )
            certificate = cls(
                relation=relation,
                impl_states=int(data["impl_states"]),
                spec_states=int(data["spec_states"]),
                iterations=int(data["iterations"]),
                stimuli=_decode_stimuli(stimuli_rows),
                _encoded=(impl_table, spec_table, rows),
                _hash=actual,
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise CertificateError(f"malformed certificate payload: {exc}") from exc
        return certificate


@dataclass
class SimulationResult:
    """Outcome of a simulation search (or a certificate recheck)."""

    holds: bool
    certificate: SimulationCertificate | None = None
    violation: Violation | None = None

    def raise_on_failure(self) -> SimulationCertificate:
        if not self.holds or self.certificate is None:
            raise RefinementError(str(self.violation), counterexample=self.violation)
        return self.certificate


@dataclass
class _Move:
    """One implementation move and the indices of winning response pairs."""

    kind: str
    detail: str
    responses: tuple[int, ...]


class _GameCache:
    """Id-indexed successor cache shared by the game search and the recheck.

    Module states are deep nested tuples, and both consumers hash them
    enormously often: every product position (search) or relation pair
    (recheck) is a (state, state) pair used as a dict/set key, and the
    same state recurs across thousands of pairs.  Interning each side's
    states into dense integer ids — the big tuple is hashed once, when
    first seen — lets every downstream cache, the game's position table
    and the recheck's relation-membership set key on small ints, which
    cuts both the hashing time and the memory retained.  Firing is paid
    once per unique state: successor sets, τ-closures (walked over the
    memoised one-step ids) and per-(state, port) spec output emissions
    are all cached by id.
    """

    __slots__ = (
        "impl", "spec", "stimuli", "impl_states", "spec_states",
        "_impl_ids", "_spec_ids", "_impl_moves", "_internal_succ", "_closures",
        "_spec_inputs", "_spec_emits", "_spec_outputs",
    )

    def __init__(self, impl: Module, spec: Module, stimuli: Mapping[Port, tuple]):
        self.impl = impl
        self.spec = spec
        self.stimuli = stimuli
        self.impl_states: list[State] = []
        self.spec_states: list[State] = []
        self._impl_ids: dict[State, int] = {}
        self._spec_ids: dict[State, int] = {}
        self._impl_moves: dict[int, tuple] = {}
        self._internal_succ: dict[int, tuple[int, ...]] = {}
        self._closures: dict[int, tuple[int, ...]] = {}
        self._spec_inputs: dict[tuple, tuple[int, ...]] = {}
        self._spec_emits: dict[tuple, tuple] = {}
        self._spec_outputs: dict[tuple, tuple[int, ...]] = {}

    def impl_id(self, state: State) -> int:
        idx = self._impl_ids.get(state)
        if idx is None:
            idx = len(self.impl_states)
            self._impl_ids[state] = idx
            self.impl_states.append(state)
        return idx

    def spec_id(self, state: State) -> int:
        idx = self._spec_ids.get(state)
        if idx is None:
            idx = len(self.spec_states)
            self._spec_ids[state] = idx
            self.spec_states.append(state)
        return idx

    def internal_succ(self, tid: int) -> tuple[int, ...]:
        """Spec ids reachable in exactly one internal step."""
        cached = self._internal_succ.get(tid)
        if cached is None:
            spec_id = self.spec_id
            cached = tuple(spec_id(t) for t in self.spec.internal_steps(self.spec_states[tid]))
            self._internal_succ[tid] = cached
        return cached

    def closure(self, tid: int) -> tuple[int, ...]:
        """Spec ids reachable by zero or more internal steps.

        Walks the memoised one-step successor ids instead of calling
        ``Module.tau_closure``: overlapping closures re-fire the same
        states' internal transitions from scratch there, and internal
        firing dominates the game's profile.
        """
        cached = self._closures.get(tid)
        if cached is None:
            internal_succ = self.internal_succ
            seen = {tid}
            frontier = [tid]
            order = [tid]
            while frontier:
                current = frontier.pop()
                for nxt in internal_succ(current):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
                        order.append(nxt)
            cached = tuple(order)
            self._closures[tid] = cached
        return cached

    def impl_moves(self, sid: int) -> tuple:
        """``(inputs, outputs, internals)`` successor sets of an impl state,
        with successors given as impl ids."""
        cached = self._impl_moves.get(sid)
        if cached is None:
            state = self.impl_states[sid]
            impl_id = self.impl_id
            inputs = tuple(
                (port, value, impl_id(s_next))
                for port, values in self.stimuli.items()
                for value in values
                for s_next in self.impl.inputs[port].fire(state, value)
            )
            outputs = tuple(
                (port, value, impl_id(s_next))
                for port, transition in self.impl.outputs.items()
                for value, s_next in transition.fire(state)
            )
            internals = tuple(impl_id(s_next) for s_next in self.impl.internal_steps(state))
            cached = (inputs, outputs, internals)
            self._impl_moves[sid] = cached
        return cached

    def spec_input_responses(self, tid: int, port: Port, value: Value) -> tuple[int, ...]:
        """Spec ids reachable by accepting (port, value) then τ-steps."""
        key = (tid, port, value)
        cached = self._spec_inputs.get(key)
        if cached is None:
            spec_id = self.spec_id
            # dict.fromkeys: the closures of different mid states overlap,
            # and duplicate responses only inflate the game arena.
            cached = tuple(
                dict.fromkeys(
                    t_next
                    for t_mid in self.spec.inputs[port].fire(self.spec_states[tid], value)
                    for t_next in self.closure(spec_id(t_mid))
                )
            )
            self._spec_inputs[key] = cached
        return cached

    def spec_output_responses(self, tid: int, port: Port, value: Value) -> tuple[int, ...]:
        """Spec ids reaching an emission of *value* on *port* after τ-steps
        (internal steps strictly *before* the output — the paper's asymmetry)."""
        key = (tid, port, value)
        cached = self._spec_outputs.get(key)
        if cached is None:
            emits = self._spec_emits.get((tid, port))
            if emits is None:
                fire = self.spec.outputs[port].fire
                spec_id = self.spec_id
                states = self.spec_states
                emits = tuple(
                    (spec_value, spec_id(t_next))
                    for mid in self.closure(tid)
                    for spec_value, t_next in fire(states[mid])
                )
                self._spec_emits[(tid, port)] = emits
            cached = tuple(dict.fromkeys(t for spec_value, t in emits if spec_value == value))
            self._spec_outputs[key] = cached
        return cached


def _interface_violation(impl: Module, spec: Module) -> Violation | None:
    if impl.input_ports() != spec.input_ports() or impl.output_ports() != spec.output_ports():
        detail = (
            f"impl ports in={sorted(map(str, impl.input_ports()))} "
            f"out={sorted(map(str, impl.output_ports()))} vs spec "
            f"in={sorted(map(str, spec.input_ports()))} out={sorted(map(str, spec.output_ports()))}"
        )
        return Violation("interface", None, None, detail)
    return None


def _normalise_stimuli(impl: Module, stimuli: Stimuli) -> dict[Port, tuple]:
    normalised = {port: tuple(values) for port, values in stimuli.items()}
    missing = impl.input_ports() - set(normalised)
    if missing:
        raise RefinementError(
            f"no stimuli provided for input ports {sorted(map(str, missing))}"
        )
    return normalised


def find_weak_simulation(
    impl: Module,
    spec: Module,
    stimuli: Stimuli,
    limit: int = 500_000,
) -> SimulationResult:
    """Decide ``impl ⊑ spec`` on the bounded instance given by *stimuli*.

    *stimuli* bounds the environment: for each input port, the finite set of
    values that may ever be offered.  Both modules must expose identical
    input and output port sets.

    The search explores product-reachable pairs with a frontier worklist
    (successor sets memoised per state, not per pair), then resolves the
    game by backward worklist propagation: each position counts, per move,
    how many of its response pairs are still winning; when a position falls,
    only the moves that actually referenced it are revisited.
    """
    interface = _interface_violation(impl, spec)
    if interface is not None:
        return SimulationResult(False, violation=interface)
    stimuli = _normalise_stimuli(impl, stimuli)
    succ = _GameCache(impl, spec, stimuli)

    # Positions are (impl id, spec id) pairs packed into one int — ids are
    # dense and bounded by *limit*, so 32 bits per side is ample.
    index_of: dict[int, int] = {}
    pairs: list[tuple[int, int]] = []
    moves: list[list[_Move] | None] = []

    def intern(sid: int, tid: int) -> int:
        key = (sid << 32) | tid
        idx = index_of.get(key)
        if idx is None:
            idx = len(pairs)
            if idx >= limit:
                raise SemanticsError(f"simulation game exceeded the limit of {limit} positions")
            index_of[key] = idx
            pairs.append((sid, tid))
            moves.append(None)
        return idx

    initial_indices = [
        intern(succ.impl_id(s0), succ.spec_id(t0)) for s0 in impl.init for t0 in spec.init
    ]

    # Forward exploration: compute every position's moves and responses.
    frontier = list(initial_indices)
    while frontier:
        idx = frontier.pop()
        if moves[idx] is not None:
            continue
        sid, tid = pairs[idx]
        position_moves: list[_Move] = []
        inputs, outputs, internals = succ.impl_moves(sid)

        for port, value, s_next in inputs:
            responses = tuple(
                intern(s_next, t_next)
                for t_next in succ.spec_input_responses(tid, port, value)
            )
            position_moves.append(_Move("input", f"input {port}={value!r}", responses))

        for port, value, s_next in outputs:
            responses = tuple(
                intern(s_next, t_next)
                for t_next in succ.spec_output_responses(tid, port, value)
            )
            position_moves.append(
                _Move("output", f"output {port} emits {value!r}", responses)
            )

        for s_next in internals:
            responses = tuple(intern(s_next, t_next) for t_next in succ.closure(tid))
            position_moves.append(_Move("internal", "internal step", responses))

        moves[idx] = position_moves
        for move in position_moves:
            for succ_idx in move.responses:
                if moves[succ_idx] is None:
                    frontier.append(succ_idx)

    # Backward worklist: a position falls when some move runs out of winning
    # responses; only the dependants of a fallen position are revisited.
    # Losses only ever originate from a move with an empty response set, so
    # when no such base case exists every explored pair wins and the reverse
    # dependency index is never built — the common (refinement-holds) path
    # pays nothing for the propagation machinery.
    good = [True] * len(pairs)
    reason: list[_Move | None] = [None] * len(pairs)
    lost: list[int] = []
    for idx in range(len(pairs)):
        for move in moves[idx] or ():
            if not move.responses:
                good[idx] = False
                reason[idx] = move
                lost.append(idx)
                break

    iterations = 0
    if lost:
        alive: list[list[int]] = [[] for _ in range(len(pairs))]
        dependants: dict[int, list[tuple[int, int]]] = {}
        for idx in range(len(pairs)):
            counts = []
            for move_idx, move in enumerate(moves[idx] or ()):
                counts.append(len(move.responses))
                for succ_idx in move.responses:
                    dependants.setdefault(succ_idx, []).append((idx, move_idx))
            alive[idx] = counts
        while lost:
            iterations += 1
            fallen = lost.pop()
            for idx, move_idx in dependants.get(fallen, ()):
                if not good[idx]:
                    continue
                counts = alive[idx]
                counts[move_idx] -= 1
                if counts[move_idx] == 0:
                    good[idx] = False
                    reason[idx] = (moves[idx] or [])[move_idx]
                    lost.append(idx)

    for s0 in impl.init:
        sid = succ.impl_id(s0)
        winners = [
            t0 for t0 in spec.init if good[index_of[(sid << 32) | succ.spec_id(t0)]]
        ]
        if not winners:
            violation = _diagnose(succ, pairs, index_of, reason, s0, spec.init)
            return SimulationResult(False, violation=violation)

    impl_states = succ.impl_states
    spec_states = succ.spec_states
    relation = frozenset(
        (impl_states[sid], spec_states[tid])
        for idx, (sid, tid) in enumerate(pairs)
        if good[idx]
    )
    certificate = SimulationCertificate(
        relation=relation,
        impl_states=len({sid for sid, _ in pairs}),
        spec_states=len({tid for _, tid in pairs}),
        iterations=iterations,
        stimuli=dict(stimuli),
    )
    return SimulationResult(True, certificate=certificate)


def recheck_certificate(
    impl: Module,
    spec: Module,
    certificate: SimulationCertificate,
    stimuli: Stimuli | None = None,
) -> SimulationResult:
    """Re-validate a stored certificate in one pass over its relation.

    Checks that the certificate's relation is a genuine weak simulation
    between *impl* and *spec* containing every initial pair — i.e. it
    replays all three simulation diagrams for every related pair, but never
    searches: each diagram check short-circuits at the first spec response
    that lands back inside the relation.  Cost is O(relation · branching)
    instead of solving the game over every product-reachable pair, which is
    what makes persisted certificates a fast path.

    When *stimuli* is given it must equal the certificate's recorded
    stimulus domain — a certificate only constitutes evidence for the
    bounded instance it was computed on.

    Returns a successful :class:`SimulationResult` carrying *certificate*
    itself, or a failing one whose violation pinpoints the first diagram
    that no longer holds (a tampered relation, or modules that drifted
    since the certificate was minted).
    """
    interface = _interface_violation(impl, spec)
    if interface is not None:
        return SimulationResult(False, violation=interface)
    if stimuli is not None:
        wanted = _normalise_stimuli(impl, stimuli)
        if wanted != certificate.stimuli:
            return SimulationResult(
                False,
                violation=Violation(
                    "interface", None, None,
                    "certificate was computed under different stimuli",
                ),
            )
    try:
        cert_stimuli = _normalise_stimuli(impl, certificate.stimuli)
    except RefinementError:
        return SimulationResult(
            False,
            violation=Violation(
                "interface", None, None,
                "certificate stimuli do not cover the implementation's inputs",
            ),
        )
    relation = certificate.relation

    for s0 in impl.init:
        if not any((s0, t0) in relation for t0 in spec.init):
            return SimulationResult(
                False,
                violation=Violation(
                    "init", s0, None,
                    f"initial state {s0!r} has no related spec initial state",
                ),
            )

    # Intern the relation's states into dense ids once: the diagram checks
    # below then test membership on packed int pairs instead of re-hashing
    # deep state tuples per candidate response (the recheck's former hot
    # loop), and the successor caches key on small ints the same way the
    # game search does.
    succ = _GameCache(impl, spec, cert_stimuli)
    id_pairs = [(succ.impl_id(s), succ.spec_id(t)) for s, t in relation]
    related = {(sid << 32) | tid for sid, tid in id_pairs}
    for sid, tid in id_pairs:
        inputs, outputs, internals = succ.impl_moves(sid)
        for port, value, s_next in inputs:
            base = s_next << 32
            if not any(
                (base | t_next) in related
                for t_next in succ.spec_input_responses(tid, port, value)
            ):
                return SimulationResult(
                    False,
                    violation=Violation(
                        "input", succ.impl_states[sid], succ.spec_states[tid],
                        f"input {port}={value!r} has no response inside the relation",
                    ),
                )
        for port, value, s_next in outputs:
            base = s_next << 32
            if not any(
                (base | t_next) in related
                for t_next in succ.spec_output_responses(tid, port, value)
            ):
                return SimulationResult(
                    False,
                    violation=Violation(
                        "output", succ.impl_states[sid], succ.spec_states[tid],
                        f"output {port} emits {value!r} with no response inside the relation",
                    ),
                )
        for s_next in internals:
            base = s_next << 32
            if not any((base | t_next) in related for t_next in succ.closure(tid)):
                return SimulationResult(
                    False,
                    violation=Violation(
                        "internal", succ.impl_states[sid], succ.spec_states[tid],
                        "internal step has no response inside the relation",
                    ),
                )
    return SimulationResult(True, certificate=certificate)


def _diagnose(
    succ: _GameCache,
    pairs: list[tuple[int, int]],
    index_of: dict[int, int],
    reason: list["_Move | None"],
    s0: State,
    spec_inits: frozenset[State],
) -> Violation:
    sid = succ.impl_id(s0)
    for t0 in spec_inits:
        idx = index_of[(sid << 32) | succ.spec_id(t0)]
        move = reason[idx]
        if move is not None:
            pair_sid, pair_tid = pairs[idx]
            return Violation(
                move.kind,
                succ.impl_states[pair_sid],
                succ.spec_states[pair_tid],
                f"{move.detail} has no winning spec response",
            )
    return Violation("init", s0, None, f"initial state {s0!r} is not simulated")
