"""Backend dispatch: one entry point over both simulation engines.

:func:`simulate_graph` is the single seam through which every caller —
:meth:`repro.api.Session.simulate`, the evaluation harness
(:mod:`repro.eval.runner`), the ablations, and the ``repro sim`` CLI —
reaches a cycle simulation.  Two backends sit behind it:

* ``"compiled"`` (default): :func:`repro.sim.compiled.compile_circuit` —
  the graph is lowered once into flat step arrays and executed with
  ring-buffer channels and an event-driven active set;
* ``"interp"``: :class:`repro.sim.cycle.CycleSimulator` — the original
  per-cycle, per-component interpreter, kept as the differential-testing
  oracle.

Both backends are cycle- and value-identical by construction (enforced by
``tests/property/test_sim_backend_equivalence.py``), so the choice is a
pure performance knob.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.environment import Environment
from ..core.exprhigh import ExprHigh
from ..hls.ir import Kernel
from .cycle import CycleSimulator, Edge, SimStats

#: valid values for the ``backend`` argument, in preference order.
BACKENDS = ("compiled", "interp")


def simulate_graph(
    graph: ExprHigh,
    env: Environment,
    kernel: Kernel,
    arrays: dict,
    *,
    capacities: Mapping[Edge, int] | None = None,
    latency_of: Callable[[str, dict], int] | None = None,
    backend: str = "compiled",
    max_cycles: int = 5_000_000,
    deadlock_window: int = 10_000,
    trace=None,
) -> SimStats:
    """Simulate one kernel graph to completion on the chosen *backend*.

    Arguments match :class:`~repro.sim.cycle.CycleSimulator`; *backend* is
    ``"compiled"`` or ``"interp"``.  Raises :class:`ValueError` for an
    unknown backend name (the CLI maps that to exit code 2).
    """
    if backend == "compiled":
        from .compiled import compile_circuit

        circuit = compile_circuit(
            graph, env, kernel, capacities=capacities, latency_of=latency_of
        )
        return circuit.run(
            arrays,
            max_cycles=max_cycles,
            deadlock_window=deadlock_window,
            trace=trace,
        )
    if backend == "interp":
        simulator = CycleSimulator(
            graph,
            env,
            kernel,
            arrays,
            capacities=capacities,
            latency_of=latency_of,
            max_cycles=max_cycles,
            deadlock_window=deadlock_window,
            trace=trace,
        )
        return simulator.run()
    raise ValueError(
        f"unknown simulation backend {backend!r}; expected one of {BACKENDS}"
    )
