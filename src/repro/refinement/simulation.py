"""Executable weak-simulation checking (definitions 4.1–4.5 of the paper).

The paper proves refinements ``m ⊑ m'`` in Lean by exhibiting a simulation
relation φ.  Here, for *bounded* instances (finite stimulus domains, bounded
queues), we *decide* the existence of a weak simulation by solving the
simulation game restricted to product-reachable pairs:

* positions are pairs (impl state, spec state), starting from all pairs of
  initial states;
* for every implementation move (input with a stimulus value, output,
  internal step) the game records the set of *spec responses* permitted by
  the corresponding diagram;
* a position is losing if some implementation move has no winning response;
  losing positions propagate backwards through a worklist (each position
  knows which predecessor moves depend on it) until no further position
  falls.

Restricting to product-reachable pairs is sound and complete for deciding
whether the initial states are simulated, because every witness pair that a
diagram could use is itself product-reachable.

The three simulation diagrams keep the paper's asymmetry:

* **input** transitions may be followed by internal steps in the spec;
* **output** transitions may be *preceded* by internal steps in the spec,
  but not followed — connecting ports fuses an output to an input with no
  internal step in between (section 4.5), so allowing trailing internal
  steps would make the connect combinator unsound;
* **internal** transitions map to zero or more internal steps.

Success yields a :class:`SimulationCertificate` whose relation (the winning
positions) is a genuine weak simulation containing the initial pairs;
failure yields a counterexample with the violated diagram.

Certificates are *persistent evidence*: they serialise (``to_dict`` /
``from_dict``, or the compact binary container in
:mod:`repro.refinement.codec`) with a stable content hash, and
:func:`recheck_certificate` re-validates a stored relation far more cheaply
than a fresh search.  Two validation strategies are layered:

* **witness replay** — a freshly minted certificate carries, per relation
  entry and implementation move, a *replay witness*: the τ-path and spec
  response the game actually used.  Replay verifies each witness with flat
  integer-table lookups (states interned once, firing memoised per unique
  state), never enumerating candidate responses, so recheck beats search
  on every obligation.  Witnesses are advisory — they are excluded from
  the content hash and a damaged witness only costs time;
* **exhaustive recheck** — the witness-free fallback replays all three
  diagrams per pair, short-circuiting at the first in-relation response.

A tampered or stale certificate is rejected, never trusted: any replay
discrepancy falls back to the exhaustive pass, whose verdict stands.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.module import Module, State, Value
from ..core.ports import Port, parse_port
from ..errors import CertificateError, RefinementError, SemanticsError
from .encoding import NodeTable, state_bytes, write_uvarint

Stimuli = Mapping[Port, Iterable[Value]]

#: Bump when the serialised certificate layout changes; older stored
#: certificates then fail :meth:`SimulationCertificate.from_dict` and the
#: caller falls back to a fresh search.  Format 2 anchors the content hash
#: on the canonical binary core (shared by the JSON and binary codecs) and
#: adds the advisory replay-witness section.
CERTIFICATE_FORMAT = 2

#: Diagram tags used by replay witnesses (canonical move order sorts input
#: moves before outputs before internals).
_KIND_INPUT, _KIND_OUTPUT, _KIND_INTERNAL = 0, 1, 2


# -- state (de)serialisation --------------------------------------------------
#
# Module states are arbitrary hashable values built from tuples, frozensets
# and scalar leaves (the queue/product combinators only ever nest tuples and
# frozensets).  JSON cannot represent tuples or frozensets natively, and
# bool/int must not be conflated, so every value is encoded as a small
# tagged list; decoding is the exact inverse, giving ``decode(encode(s)) ==
# s`` for every state the semantics can produce.  The binary view of the
# same values lives in :mod:`repro.refinement.encoding`; frozenset elements
# are ordered by their binary encodings in both views so the two codecs
# agree on one canonical form.


def encode_state(value) -> object:
    """Encode a module state (or stimulus value) as JSON-serialisable data."""
    if value is None:
        return ["z"]
    if isinstance(value, bool):  # before int: bool is an int subclass
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, tuple):
        return ["t", [encode_state(item) for item in value]]
    if isinstance(value, frozenset):
        items = sorted(value, key=state_bytes)
        return ["fs", [encode_state(item) for item in items]]
    raise CertificateError(
        f"cannot serialise state component of type {type(value).__name__!r}"
    )


def decode_state(data) -> object:
    """Invert :func:`encode_state`; raises :class:`CertificateError` on junk."""
    try:
        tag = data[0]
        if tag == "z":
            return None
        if tag in ("b", "i", "f", "s"):
            value = data[1]
            expected = {"b": bool, "i": int, "f": float, "s": str}[tag]
            if type(value) is not expected and not (tag == "f" and type(value) is int):
                raise CertificateError(f"tag {tag!r} carries a {type(value).__name__}")
            return float(value) if tag == "f" else value
        if tag == "t":
            return tuple(decode_state(item) for item in data[1])
        if tag == "fs":
            return frozenset(decode_state(item) for item in data[1])
    except (IndexError, TypeError, KeyError) as exc:
        raise CertificateError(f"malformed encoded state {data!r}") from exc
    raise CertificateError(f"unknown state tag in {data!r}")


def _encode_stimuli(stimuli: Stimuli) -> list:
    rows = [
        [str(port), [encode_state(value) for value in values]]
        for port, values in stimuli.items()
    ]
    rows.sort(key=lambda row: row[0])
    return rows


def _decode_stimuli(rows) -> dict[Port, tuple[Value, ...]]:
    try:
        return {
            parse_port(name): tuple(decode_state(value) for value in values)
            for name, values in rows
        }
    except (TypeError, ValueError) as exc:
        raise CertificateError(f"malformed stimuli encoding: {exc}") from exc


def _decode_stimuli_values(rows) -> dict[Port, tuple[Value, ...]]:
    """Like :func:`_decode_stimuli` but for already-decoded values
    (the binary codec hands plain states, not tagged JSON)."""
    try:
        return {parse_port(name): tuple(values) for name, values in rows}
    except (TypeError, ValueError) as exc:
        raise CertificateError(f"malformed stimuli encoding: {exc}") from exc


def _core_bytes(
    impl_states,
    spec_states,
    rows,
    stimuli: Mapping[Port, tuple],
    impl_count: int,
    spec_count: int,
    table: NodeTable,
) -> bytes:
    """The canonical binary *core* of a certificate's semantic content.

    States are interned into *table* (hash-consed, children before parents)
    and the core serialises the node records plus the two state tables, the
    relation rows, the stimuli and the state counts.  The SHA-256 of this
    byte string **is** the certificate's content hash — both codecs build
    the identical core, so hashes agree across encodings.  Replay
    witnesses are deliberately excluded: they are advisory, and their
    choice may vary between processes.
    """
    impl_roots = [table.index(s) for s in impl_states]
    spec_roots = [table.index(t) for t in spec_states]
    stim_rows = []
    for port in sorted(stimuli, key=str):
        stim_rows.append(
            (str(port).encode("utf-8"), [table.index(v) for v in stimuli[port]])
        )
    out = bytearray()
    write_uvarint(out, CERTIFICATE_FORMAT)
    write_uvarint(out, len(table))
    out += table.blob()
    write_uvarint(out, len(impl_roots))
    for root in impl_roots:
        write_uvarint(out, root)
    write_uvarint(out, len(spec_roots))
    for root in spec_roots:
        write_uvarint(out, root)
    write_uvarint(out, len(rows))
    for i, j in rows:
        write_uvarint(out, i)
        write_uvarint(out, j)
    write_uvarint(out, len(stim_rows))
    for name, value_roots in stim_rows:
        write_uvarint(out, len(name))
        out += name
        write_uvarint(out, len(value_roots))
        for root in value_roots:
            write_uvarint(out, root)
    write_uvarint(out, int(impl_count))
    write_uvarint(out, int(spec_count))
    return bytes(out)


@dataclass(frozen=True)
class ReplayWitnesses:
    """Advisory fast-replay hints attached to a certificate.

    Everything is expressed in the certificate's *canonical index space*
    (state tables sorted by binary encoding, relation rows sorted):

    * ``extra_spec`` — spec states used only as τ-path waypoints (the mid
      states of input/output diagrams are not necessarily related to
      anything); indices ``len(spec_table)..`` refer into this tuple;
    * ``paths`` — deduplicated τ-paths, each a tuple of extended spec
      indices with consecutive entries one internal step apart;
    * ``rows`` — one tuple per canonical relation row, holding one
      ``(kind, path_index, response_index)`` triple per *canonical move*
      of the implementation state (moves deduplicated and sorted by
      ``(kind, port, value bytes, successor index)``, so mint and replay
      agree on the order regardless of process hash seeds).

    For input moves the path runs mid → response; for outputs it runs
    source → emitting mid with the response held in ``response_index``;
    for internals it runs source → response.  Witnesses never enter the
    content hash: corruption is detected by replay and only costs the
    exhaustive fallback, never soundness.
    """

    extra_spec: tuple[State, ...]
    paths: tuple[tuple[int, ...], ...]
    rows: tuple[tuple[tuple[int, int, int], ...], ...]


@dataclass
class SimulationCertificate:
    """A checked simulation relation between an implementation and a spec.

    The certificate is self-contained evidence of ``impl ⊑ spec`` on one
    bounded instance: the winning relation, the stimulus domain it was
    decided under, and bookkeeping counts.  It serialises losslessly
    (``to_dict``/``from_dict`` for the JSON interop codec,
    :func:`repro.refinement.codec.to_bytes`/``from_bytes`` for the compact
    binary container) and carries a stable SHA-256 content hash, so it can
    be persisted in the content-addressed result cache or dumped to a file
    and independently re-validated later with :func:`recheck_certificate`.
    """

    relation: frozenset[tuple[State, State]]
    impl_states: int
    spec_states: int
    iterations: int
    stimuli: dict[Port, tuple[Value, ...]] = field(default_factory=dict)
    #: Advisory replay witnesses (see :class:`ReplayWitnesses`); excluded
    #: from equality and from the content hash.
    witnesses: ReplayWitnesses | None = field(
        default=None, repr=False, compare=False, kw_only=True
    )
    # Memoised canonical forms: the relation repeats the same few hundred
    # distinct states across tens of thousands of pairs, so the canonical
    # encoding interns each state once into a table and stores the relation
    # as index pairs — and every consumer (to_dict, the binary codec, the
    # cache write, provenance hashes in worker results) shares one pass.
    _canon: tuple | None = field(default=None, repr=False, compare=False, kw_only=True)
    _encoded: tuple | None = field(
        default=None, repr=False, compare=False, kw_only=True
    )
    _hash: str | None = field(default=None, repr=False, compare=False, kw_only=True)

    def related(self, impl_state: State, spec_state: State) -> bool:
        return (impl_state, spec_state) in self.relation

    # -- serialisation -------------------------------------------------------

    def canonical_parts(self) -> tuple[tuple, tuple, tuple]:
        """``(impl_states, spec_states, rows)`` in canonical order.

        States are sorted by their standalone binary encodings — a total
        order independent of hash seeds and construction history — and the
        relation becomes sorted ``(impl_index, spec_index)`` pairs.  Both
        codecs, the content hash and witness replay all share this one
        index space.
        """
        if self._canon is None:
            memo: dict = {}
            impl = sorted({s for s, _ in self.relation}, key=lambda s: state_bytes(s, memo))
            spec = sorted({t for _, t in self.relation}, key=lambda t: state_bytes(t, memo))
            impl_index = {s: i for i, s in enumerate(impl)}
            spec_index = {t: j for j, t in enumerate(spec)}
            rows = sorted((impl_index[s], spec_index[t]) for s, t in self.relation)
            self._canon = (tuple(impl), tuple(spec), tuple(rows))
        return self._canon

    def _encoded_parts(self) -> tuple[list, list, list]:
        """``(impl_table, spec_table, relation_rows)`` — the JSON encoding
        of :meth:`canonical_parts` (each distinct state encoded once)."""
        if self._encoded is None:
            impl_states, spec_states, rows = self.canonical_parts()
            self._encoded = (
                [encode_state(s) for s in impl_states],
                [encode_state(t) for t in spec_states],
                [list(row) for row in rows],
            )
        return self._encoded

    def core_bytes(self, table: NodeTable | None = None) -> bytes:
        """The canonical binary core (see :func:`_core_bytes`).

        Passing an empty *table* lets the binary codec keep interning past
        the core (witness states reuse core substructure).
        """
        impl_states, spec_states, rows = self.canonical_parts()
        return _core_bytes(
            impl_states,
            spec_states,
            rows,
            self.stimuli,
            self.impl_states,
            self.spec_states,
            table if table is not None else NodeTable(),
        )

    def content_hash(self) -> str:
        """A stable SHA-256 over the certificate's semantic content.

        The hash is the digest of the canonical binary core — state
        tables and relation rows in canonical order, stimuli, state counts
        and the format version — so equal certificates hash equally
        regardless of construction order *and* of codec, and any tampering
        with the hashed content of a serialised certificate is detectable
        before the diagrams are even re-checked.  Replay witnesses are
        advisory and excluded.
        """
        if self._hash is None:
            self._hash = hashlib.sha256(self.core_bytes()).hexdigest()
        return self._hash

    def to_dict(self) -> dict:
        impl_table, spec_table, rows = self._encoded_parts()
        payload = {
            "kind": "SimulationCertificate",
            "format": CERTIFICATE_FORMAT,
            "impl_table": impl_table,
            "spec_table": spec_table,
            "relation": rows,
            "stimuli": _encode_stimuli(self.stimuli),
            "impl_states": int(self.impl_states),
            "spec_states": int(self.spec_states),
            "iterations": int(self.iterations),
            "hash": self.content_hash(),
        }
        if self.witnesses is not None:
            payload["witnesses"] = {
                "extra_spec": [encode_state(t) for t in self.witnesses.extra_spec],
                "paths": [list(path) for path in self.witnesses.paths],
                "rows": [
                    [list(move) for move in row] for row in self.witnesses.rows
                ],
            }
        return payload

    def summary(self) -> str:
        return (
            f"certificate: {len(self.relation)} related pairs "
            f"({self.impl_states} impl / {self.spec_states} spec states), "
            f"hash {self.content_hash()[:12]}"
        )

    @classmethod
    def from_dict(cls, data: object) -> "SimulationCertificate":
        """Rebuild a certificate; raises :class:`CertificateError` when the
        payload is malformed, from a different format version, or fails its
        embedded content hash (tamper/corruption detection).

        The hash is recomputed from the decoded content by rebuilding the
        canonical binary core in payload order — so any reordering or
        tampering of the hashed fields is a hash mismatch, while damage to
        the advisory witness block silently drops the witnesses (replay
        would reject them anyway; the exhaustive recheck takes over)."""
        if not isinstance(data, dict):
            raise CertificateError(f"certificate payload is {type(data).__name__}, not a dict")
        if data.get("format") != CERTIFICATE_FORMAT:
            raise CertificateError(
                f"certificate format {data.get('format')!r} != {CERTIFICATE_FORMAT}"
            )
        try:
            impl_table = list(data["impl_table"])
            spec_table = list(data["spec_table"])
            rows = [(int(i), int(j)) for i, j in data["relation"]]
            stimuli_rows = sorted(data["stimuli"], key=lambda row: row[0])
            impl_count = int(data["impl_states"])
            spec_count = int(data["spec_states"])
            impl_states = [decode_state(row) for row in impl_table]
            spec_states = [decode_state(row) for row in spec_table]
            stimuli = _decode_stimuli(stimuli_rows)
        except CertificateError:
            raise
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise CertificateError(f"malformed certificate payload: {exc}") from exc
        core = _core_bytes(
            impl_states, spec_states, rows, stimuli, impl_count, spec_count, NodeTable()
        )
        actual = hashlib.sha256(core).hexdigest()
        stored = data.get("hash")
        if stored != actual:
            raise CertificateError(
                f"certificate hash mismatch: stored {str(stored)[:12]}…, "
                f"content {actual[:12]}… (tampered or corrupted)"
            )
        try:
            if any(
                i < 0 or j < 0 or i >= len(impl_states) or j >= len(spec_states)
                for i, j in rows
            ):
                raise ValueError("relation row indexes outside the state tables")
            relation = frozenset(
                (impl_states[i], spec_states[j]) for i, j in rows
            )
        except (TypeError, ValueError, IndexError) as exc:
            raise CertificateError(f"malformed certificate payload: {exc}") from exc
        witnesses = _witnesses_from_json(
            data.get("witnesses"), len(rows), len(spec_states)
        )
        return cls(
            relation=relation,
            impl_states=impl_count,
            spec_states=spec_count,
            iterations=int(data.get("iterations", 0)),
            stimuli=stimuli,
            witnesses=witnesses,
            _canon=(tuple(impl_states), tuple(spec_states), tuple(rows)),
            _encoded=(impl_table, spec_table, [list(row) for row in rows]),
            _hash=actual,
        )


def _witnesses_from_json(block, row_count: int, primary: int) -> ReplayWitnesses | None:
    """Parse the advisory witness block; any anomaly yields ``None``.

    Witnesses are unhashed hints — a malformed block must never make a
    certificate unusable, so parsing is strictly tolerant and the replay
    pass re-validates every index it actually uses."""
    if not isinstance(block, dict):
        return None
    try:
        extra_spec = tuple(decode_state(row) for row in block["extra_spec"])
        paths = tuple(
            tuple(int(k) for k in path) for path in block["paths"]
        )
        rows = tuple(
            tuple((int(k), int(p), int(r)) for k, p, r in row)
            for row in block["rows"]
        )
    except (CertificateError, KeyError, TypeError, ValueError):
        return None
    if len(rows) != row_count:
        return None
    return ReplayWitnesses(extra_spec=extra_spec, paths=paths, rows=rows)


@dataclass
class Violation:
    """Why the simulation game is lost from some position."""

    kind: str  # "input" | "output" | "internal" | "interface" | "init"
    impl_state: State
    spec_state: State | None
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} diagram fails: {self.detail}"


@dataclass
class SimulationResult:
    """Outcome of a simulation search (or a certificate recheck).

    *method* records how a recheck validated (or refuted) its certificate:
    ``"replay"`` for the witness fast path, ``"exhaustive"`` for the full
    three-diagram pass, ``None`` for a fresh search."""

    holds: bool
    certificate: SimulationCertificate | None = None
    violation: Violation | None = None
    method: str | None = None

    def raise_on_failure(self) -> SimulationCertificate:
        if not self.holds or self.certificate is None:
            raise RefinementError(str(self.violation), counterexample=self.violation)
        return self.certificate


@dataclass
class _Move:
    """One implementation move and the indices of winning response pairs."""

    kind: str
    detail: str
    responses: tuple[int, ...]
    port: Port | None = None
    value: Value | None = None
    succ_sid: int = -1


class _GameCache:
    """Id-indexed successor cache shared by the game search and the recheck.

    Module states are deep nested tuples, and both consumers hash them
    enormously often: every product position (search) or relation pair
    (recheck) is a (state, state) pair used as a dict/set key, and the
    same state recurs across thousands of pairs.  Interning each side's
    states into dense integer ids — the big tuple is hashed once, when
    first seen — lets every downstream cache, the game's position table
    and the recheck's relation-membership set key on small ints, which
    cuts both the hashing time and the memory retained.  Firing is paid
    once per unique state: successor sets, τ-closures (walked over the
    memoised one-step ids) and per-(state, port) spec output emissions
    are all cached by id.
    """

    __slots__ = (
        "impl", "spec", "stimuli", "impl_states", "spec_states",
        "_impl_ids", "_spec_ids", "_impl_moves", "_internal_succ", "_closures",
        "_spec_inputs", "_spec_in_mids", "_spec_emits", "_spec_outputs",
        "_tau_parents",
    )

    def __init__(self, impl: Module, spec: Module, stimuli: Mapping[Port, tuple]):
        self.impl = impl
        self.spec = spec
        self.stimuli = stimuli
        self.impl_states: list[State] = []
        self.spec_states: list[State] = []
        self._impl_ids: dict[State, int] = {}
        self._spec_ids: dict[State, int] = {}
        self._impl_moves: dict[int, tuple] = {}
        self._internal_succ: dict[int, tuple[int, ...]] = {}
        self._closures: dict[int, tuple[int, ...]] = {}
        self._spec_inputs: dict[tuple, tuple[int, ...]] = {}
        self._spec_in_mids: dict[tuple, tuple[int, ...]] = {}
        self._spec_emits: dict[tuple, tuple] = {}
        self._spec_outputs: dict[tuple, tuple[int, ...]] = {}
        self._tau_parents: dict[int, dict[int, int]] = {}

    def impl_id(self, state: State) -> int:
        idx = self._impl_ids.get(state)
        if idx is None:
            idx = len(self.impl_states)
            self._impl_ids[state] = idx
            self.impl_states.append(state)
        return idx

    def spec_id(self, state: State) -> int:
        idx = self._spec_ids.get(state)
        if idx is None:
            idx = len(self.spec_states)
            self._spec_ids[state] = idx
            self.spec_states.append(state)
        return idx

    def internal_succ(self, tid: int) -> tuple[int, ...]:
        """Spec ids reachable in exactly one internal step."""
        cached = self._internal_succ.get(tid)
        if cached is None:
            spec_id = self.spec_id
            cached = tuple(spec_id(t) for t in self.spec.internal_steps(self.spec_states[tid]))
            self._internal_succ[tid] = cached
        return cached

    def closure(self, tid: int) -> tuple[int, ...]:
        """Spec ids reachable by zero or more internal steps.

        Walks the memoised one-step successor ids instead of calling
        ``Module.tau_closure``: overlapping closures re-fire the same
        states' internal transitions from scratch there, and internal
        firing dominates the game's profile.
        """
        cached = self._closures.get(tid)
        if cached is None:
            internal_succ = self.internal_succ
            seen = {tid}
            frontier = [tid]
            order = [tid]
            while frontier:
                current = frontier.pop()
                for nxt in internal_succ(current):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
                        order.append(nxt)
            cached = tuple(order)
            self._closures[tid] = cached
        return cached

    def tau_parents(self, tid: int) -> dict[int, int]:
        """A τ-reachability spanning tree rooted at *tid* (child → parent)."""
        cached = self._tau_parents.get(tid)
        if cached is None:
            cached = {tid: -1}
            frontier = [tid]
            while frontier:
                current = frontier.pop()
                for nxt in self.internal_succ(current):
                    if nxt not in cached:
                        cached[nxt] = current
                        frontier.append(nxt)
            self._tau_parents[tid] = cached
        return cached

    def tau_path(self, source: int, target: int) -> list[int] | None:
        """One concrete τ-path ``source → … → target``, or None."""
        parents = self.tau_parents(source)
        if target not in parents:
            return None
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    def impl_moves(self, sid: int) -> tuple:
        """``(inputs, outputs, internals)`` successor sets of an impl state,
        with successors given as impl ids."""
        cached = self._impl_moves.get(sid)
        if cached is None:
            state = self.impl_states[sid]
            impl_id = self.impl_id
            inputs = tuple(
                (port, value, impl_id(s_next))
                for port, values in self.stimuli.items()
                for value in values
                for s_next in self.impl.inputs[port].fire(state, value)
            )
            outputs = tuple(
                (port, value, impl_id(s_next))
                for port, transition in self.impl.outputs.items()
                for value, s_next in transition.fire(state)
            )
            internals = tuple(impl_id(s_next) for s_next in self.impl.internal_steps(state))
            cached = (inputs, outputs, internals)
            self._impl_moves[sid] = cached
        return cached

    def spec_input_mids(self, tid: int, port: Port, value: Value) -> tuple[int, ...]:
        """Spec ids reachable by accepting (port, value), before any τ-step."""
        key = (tid, port, value)
        cached = self._spec_in_mids.get(key)
        if cached is None:
            spec_id = self.spec_id
            cached = tuple(
                spec_id(t_mid)
                for t_mid in self.spec.inputs[port].fire(self.spec_states[tid], value)
            )
            self._spec_in_mids[key] = cached
        return cached

    def spec_input_responses(self, tid: int, port: Port, value: Value) -> tuple[int, ...]:
        """Spec ids reachable by accepting (port, value) then τ-steps."""
        key = (tid, port, value)
        cached = self._spec_inputs.get(key)
        if cached is None:
            # dict.fromkeys: the closures of different mid states overlap,
            # and duplicate responses only inflate the game arena.
            cached = tuple(
                dict.fromkeys(
                    t_next
                    for t_mid in self.spec_input_mids(tid, port, value)
                    for t_next in self.closure(t_mid)
                )
            )
            self._spec_inputs[key] = cached
        return cached

    def spec_output_responses(self, tid: int, port: Port, value: Value) -> tuple[int, ...]:
        """Spec ids reaching an emission of *value* on *port* after τ-steps
        (internal steps strictly *before* the output — the paper's asymmetry)."""
        key = (tid, port, value)
        cached = self._spec_outputs.get(key)
        if cached is None:
            emits = self._spec_emits.get((tid, port))
            if emits is None:
                fire = self.spec.outputs[port].fire
                spec_id = self.spec_id
                states = self.spec_states
                emits = tuple(
                    (spec_value, spec_id(t_next))
                    for mid in self.closure(tid)
                    for spec_value, t_next in fire(states[mid])
                )
                self._spec_emits[(tid, port)] = emits
            cached = tuple(dict.fromkeys(t for spec_value, t in emits if spec_value == value))
            self._spec_outputs[key] = cached
        return cached


def _interface_violation(impl: Module, spec: Module) -> Violation | None:
    if impl.input_ports() != spec.input_ports() or impl.output_ports() != spec.output_ports():
        detail = (
            f"impl ports in={sorted(map(str, impl.input_ports()))} "
            f"out={sorted(map(str, impl.output_ports()))} vs spec "
            f"in={sorted(map(str, spec.input_ports()))} out={sorted(map(str, spec.output_ports()))}"
        )
        return Violation("interface", None, None, detail)
    return None


def _normalise_stimuli(impl: Module, stimuli: Stimuli) -> dict[Port, tuple]:
    """Tuple-ise stimulus values and order the ports canonically.

    Ports are sorted by name so that move enumeration — and hence witness
    extraction — is deterministic across processes regardless of the hash
    seed governing the caller's dict/frozenset iteration order.
    """
    normalised = {port: tuple(values) for port, values in stimuli.items()}
    missing = impl.input_ports() - set(normalised)
    if missing:
        raise RefinementError(
            f"no stimuli provided for input ports {sorted(map(str, missing))}"
        )
    return {port: normalised[port] for port in sorted(normalised, key=str)}


def find_weak_simulation(
    impl: Module,
    spec: Module,
    stimuli: Stimuli,
    limit: int = 500_000,
    *,
    mint_witnesses: bool = True,
) -> SimulationResult:
    """Decide ``impl ⊑ spec`` on the bounded instance given by *stimuli*.

    *stimuli* bounds the environment: for each input port, the finite set of
    values that may ever be offered.  Both modules must expose identical
    input and output port sets.

    The search explores product-reachable pairs with a frontier worklist
    (successor sets memoised per state, not per pair), then resolves the
    game by backward worklist propagation: each position counts, per move,
    how many of its response pairs are still winning; when a position falls,
    only the moves that actually referenced it are revisited.

    On success the certificate carries replay witnesses (the concrete spec
    response each diagram used) unless *mint_witnesses* is False; see
    :class:`ReplayWitnesses`.
    """
    interface = _interface_violation(impl, spec)
    if interface is not None:
        return SimulationResult(False, violation=interface)
    stimuli = _normalise_stimuli(impl, stimuli)
    succ = _GameCache(impl, spec, stimuli)

    # Positions are (impl id, spec id) pairs packed into one int — ids are
    # dense and bounded by *limit*, so 32 bits per side is ample.
    index_of: dict[int, int] = {}
    pairs: list[tuple[int, int]] = []
    moves: list[list[_Move] | None] = []

    def intern(sid: int, tid: int) -> int:
        key = (sid << 32) | tid
        idx = index_of.get(key)
        if idx is None:
            idx = len(pairs)
            if idx >= limit:
                raise SemanticsError(f"simulation game exceeded the limit of {limit} positions")
            index_of[key] = idx
            pairs.append((sid, tid))
            moves.append(None)
        return idx

    initial_indices = [
        intern(succ.impl_id(s0), succ.spec_id(t0)) for s0 in impl.init for t0 in spec.init
    ]

    # Forward exploration: compute every position's moves and responses.
    frontier = list(initial_indices)
    while frontier:
        idx = frontier.pop()
        if moves[idx] is not None:
            continue
        sid, tid = pairs[idx]
        position_moves = expand_position(succ, sid, tid, intern)
        moves[idx] = position_moves
        for move in position_moves:
            for succ_idx in move.responses:
                if moves[succ_idx] is None:
                    frontier.append(succ_idx)

    return resolve_game(succ, pairs, moves, index_of, mint_witnesses=mint_witnesses)


def expand_position(succ: _GameCache, sid: int, tid: int, intern) -> list[_Move]:
    """Compute one game position's moves (spec responses interned via
    *intern*).  Shared by the serial search and the sharded search's
    local-expansion path."""
    position_moves: list[_Move] = []
    inputs, outputs, internals = succ.impl_moves(sid)

    for port, value, s_next in inputs:
        responses = tuple(
            intern(s_next, t_next)
            for t_next in succ.spec_input_responses(tid, port, value)
        )
        position_moves.append(
            _Move(
                "input", f"input {port}={value!r}", responses,
                port=port, value=value, succ_sid=s_next,
            )
        )

    for port, value, s_next in outputs:
        responses = tuple(
            intern(s_next, t_next)
            for t_next in succ.spec_output_responses(tid, port, value)
        )
        position_moves.append(
            _Move(
                "output", f"output {port} emits {value!r}", responses,
                port=port, value=value, succ_sid=s_next,
            )
        )

    for s_next in internals:
        responses = tuple(intern(s_next, t_next) for t_next in succ.closure(tid))
        position_moves.append(
            _Move("internal", "internal step", responses, succ_sid=s_next)
        )
    return position_moves


def resolve_game(
    succ: _GameCache,
    pairs: list[tuple[int, int]],
    moves: list,
    index_of: dict[int, int],
    *,
    mint_witnesses: bool = True,
) -> SimulationResult:
    """Solve an explored simulation game and mint the certificate.

    Shared by the serial search (which explores the arena in-process) and
    the sharded search (which merges worker-expanded frontiers into the
    same position/move tables before resolving).
    """
    impl, spec = succ.impl, succ.spec

    # Backward worklist: a position falls when some move runs out of winning
    # responses; only the dependants of a fallen position are revisited.
    # Losses only ever originate from a move with an empty response set, so
    # when no such base case exists every explored pair wins and the reverse
    # dependency index is never built — the common (refinement-holds) path
    # pays nothing for the propagation machinery.
    good = [True] * len(pairs)
    reason: list[_Move | None] = [None] * len(pairs)
    lost: list[int] = []
    for idx in range(len(pairs)):
        for move in moves[idx] or ():
            if not move.responses:
                good[idx] = False
                reason[idx] = move
                lost.append(idx)
                break

    iterations = 0
    if lost:
        alive: list[list[int]] = [[] for _ in range(len(pairs))]
        dependants: dict[int, list[tuple[int, int]]] = {}
        for idx in range(len(pairs)):
            counts = []
            for move_idx, move in enumerate(moves[idx] or ()):
                counts.append(len(move.responses))
                for succ_idx in move.responses:
                    dependants.setdefault(succ_idx, []).append((idx, move_idx))
            alive[idx] = counts
        while lost:
            iterations += 1
            fallen = lost.pop()
            for idx, move_idx in dependants.get(fallen, ()):
                if not good[idx]:
                    continue
                counts = alive[idx]
                counts[move_idx] -= 1
                if counts[move_idx] == 0:
                    good[idx] = False
                    reason[idx] = (moves[idx] or [])[move_idx]
                    lost.append(idx)

    for s0 in impl.init:
        sid = succ.impl_id(s0)
        winners = [
            t0 for t0 in spec.init if good[index_of[(sid << 32) | succ.spec_id(t0)]]
        ]
        if not winners:
            violation = _diagnose(succ, pairs, index_of, reason, s0, spec.init)
            return SimulationResult(False, violation=violation)

    impl_states = succ.impl_states
    spec_states = succ.spec_states
    relation = frozenset(
        (impl_states[sid], spec_states[tid])
        for idx, (sid, tid) in enumerate(pairs)
        if good[idx]
    )
    certificate = SimulationCertificate(
        relation=relation,
        impl_states=len({sid for sid, _ in pairs}),
        spec_states=len({tid for _, tid in pairs}),
        iterations=iterations,
        stimuli=dict(succ.stimuli),
    )
    if mint_witnesses:
        certificate.witnesses = _extract_witnesses(
            succ, pairs, moves, good, index_of, certificate
        )
    return SimulationResult(True, certificate=certificate)


def _extract_witnesses(
    succ: _GameCache,
    pairs: list[tuple[int, int]],
    moves: list,
    good: list[bool],
    index_of: dict[int, int],
    certificate: SimulationCertificate,
) -> ReplayWitnesses | None:
    """Record, per relation entry and canonical move, the response the game
    actually used — the data :func:`recheck_certificate` replays in O(1)
    per move.  Returns None when anything is off (the certificate then
    simply rechecks through the exhaustive pass)."""
    impl_states, spec_states, rows = certificate.canonical_parts()
    impl_sid_of = [succ.impl_id(s) for s in impl_states]
    spec_tid_of = [succ.spec_id(t) for t in spec_states]
    spec_canon_of_tid = {tid: j for j, tid in enumerate(spec_tid_of)}
    impl_canon_of_sid = {sid: i for i, sid in enumerate(impl_sid_of)}
    primary = len(spec_states)

    extra_states: list[State] = []
    extra_of_tid: dict[int, int] = {}

    def extended_index(tid: int) -> int:
        j = spec_canon_of_tid.get(tid)
        if j is not None:
            return j
        j = extra_of_tid.get(tid)
        if j is None:
            j = primary + len(extra_states)
            extra_of_tid[tid] = j
            extra_states.append(succ.spec_states[tid])
        return j

    paths: list[tuple[int, ...]] = []
    path_index: dict[tuple[int, ...], int] = {}

    def intern_path(tids: list[int]) -> int:
        path = tuple(extended_index(t) for t in tids)
        idx = path_index.get(path)
        if idx is None:
            idx = len(paths)
            path_index[path] = idx
            paths.append(path)
        return idx

    bytes_memo: dict = {}
    emit_mids: dict[tuple, dict] = {}
    witness_rows: list[tuple[tuple[int, int, int], ...]] = []

    for i, j in rows:
        sid, tid = impl_sid_of[i], spec_tid_of[j]
        idx = index_of.get((sid << 32) | tid)
        if idx is None:
            return None
        canonical: dict[tuple, _Move] = {}
        for move in moves[idx] or ():
            succ_i = impl_canon_of_sid.get(move.succ_sid)
            if succ_i is None:
                return None
            if move.kind == "input":
                key = (_KIND_INPUT, str(move.port), state_bytes(move.value, bytes_memo), succ_i)
            elif move.kind == "output":
                key = (_KIND_OUTPUT, str(move.port), state_bytes(move.value, bytes_memo), succ_i)
            else:
                key = (_KIND_INTERNAL, "", b"", succ_i)
            canonical.setdefault(key, move)
        row_witnesses: list[tuple[int, int, int]] = []
        for key in sorted(canonical):
            move = canonical[key]
            resp_tid = None
            for response in move.responses:
                if good[response]:
                    resp_tid = pairs[response][1]
                    break
            if resp_tid is None:
                return None
            if move.kind == "input":
                witness = None
                for mid in succ.spec_input_mids(tid, move.port, move.value):
                    tids = succ.tau_path(mid, resp_tid)
                    if tids is not None:
                        witness = (_KIND_INPUT, intern_path(tids), 0)
                        break
                if witness is None:
                    return None
            elif move.kind == "output":
                emap_key = (tid, move.port)
                emap = emit_mids.get(emap_key)
                if emap is None:
                    emap = {}
                    fire = succ.spec.outputs[move.port].fire
                    for mid in succ.closure(tid):
                        for spec_value, t_next in fire(succ.spec_states[mid]):
                            emap.setdefault((spec_value, succ.spec_id(t_next)), mid)
                    emit_mids[emap_key] = emap
                mid = emap.get((move.value, resp_tid))
                if mid is None:
                    return None
                tids = succ.tau_path(tid, mid)
                if tids is None:
                    return None
                resp_canon = spec_canon_of_tid.get(resp_tid)
                if resp_canon is None:
                    return None
                witness = (_KIND_OUTPUT, intern_path(tids), resp_canon)
            else:
                tids = succ.tau_path(tid, resp_tid)
                if tids is None:
                    return None
                witness = (_KIND_INTERNAL, intern_path(tids), 0)
            row_witnesses.append(witness)
        witness_rows.append(tuple(row_witnesses))

    return ReplayWitnesses(
        extra_spec=tuple(extra_states),
        paths=tuple(paths),
        rows=tuple(witness_rows),
    )


def recheck_certificate(
    impl: Module,
    spec: Module,
    certificate: SimulationCertificate,
    stimuli: Stimuli | None = None,
) -> SimulationResult:
    """Re-validate a stored certificate without solving the game.

    Checks that the certificate's relation is a genuine weak simulation
    between *impl* and *spec* containing every initial pair.  When the
    certificate carries replay witnesses, each diagram obligation is
    discharged by verifying the recorded response with flat id-table
    lookups (the witness fast path); a certificate without witnesses — or
    one whose witnesses fail to verify — goes through the exhaustive pass,
    which replays all three simulation diagrams per pair and
    short-circuits at the first spec response inside the relation.  Either
    way the cost is O(relation · branching) or better, never a game
    search, which is what makes persisted certificates a fast path.

    When *stimuli* is given it must equal the certificate's recorded
    stimulus domain — a certificate only constitutes evidence for the
    bounded instance it was computed on.

    Returns a successful :class:`SimulationResult` carrying *certificate*
    itself (with ``method`` naming the strategy that validated it), or a
    failing one whose violation pinpoints the first diagram that no longer
    holds (a tampered relation, or modules that drifted since the
    certificate was minted).
    """
    interface = _interface_violation(impl, spec)
    if interface is not None:
        return SimulationResult(False, violation=interface)
    if stimuli is not None:
        wanted = _normalise_stimuli(impl, stimuli)
        if wanted != certificate.stimuli:
            return SimulationResult(
                False,
                violation=Violation(
                    "interface", None, None,
                    "certificate was computed under different stimuli",
                ),
            )
    try:
        cert_stimuli = _normalise_stimuli(impl, certificate.stimuli)
    except RefinementError:
        return SimulationResult(
            False,
            violation=Violation(
                "interface", None, None,
                "certificate stimuli do not cover the implementation's inputs",
            ),
        )
    relation = certificate.relation

    for s0 in impl.init:
        if not any((s0, t0) in relation for t0 in spec.init):
            return SimulationResult(
                False,
                violation=Violation(
                    "init", s0, None,
                    f"initial state {s0!r} has no related spec initial state",
                ),
            )

    if certificate.witnesses is not None and _witness_replay(
        impl, spec, certificate, cert_stimuli
    ):
        return SimulationResult(True, certificate=certificate, method="replay")
    return _exhaustive_recheck(impl, spec, certificate, cert_stimuli)


def _witness_replay(
    impl: Module,
    spec: Module,
    certificate: SimulationCertificate,
    cert_stimuli: Mapping[Port, tuple],
) -> bool:
    """Validate every relation entry through its recorded witnesses.

    Works entirely in the certificate's canonical index space: both state
    tables are interned once, implementation moves are enumerated by
    firing each *unique* implementation state once (the trust boundary —
    impl moves are always re-derived, never read from the certificate),
    deduplicated and sorted into the canonical move order, then checked
    one witness each: path edges verified against memoised one-step spec
    successors, responses against the packed relation set.  Returns False
    on *any* discrepancy — the exhaustive recheck then decides.
    """
    witnesses = certificate.witnesses
    assert witnesses is not None
    impl_states, spec_states, rows = certificate.canonical_parts()
    if len(witnesses.rows) != len(rows):
        return False
    primary = len(spec_states)
    spec_all = list(spec_states) + list(witnesses.extra_spec)
    total = len(spec_all)
    paths = witnesses.paths
    n_paths = len(paths)
    for path in paths:
        if not path:
            return False
        for k in path:
            if not (0 <= k < total):
                return False

    related = {(i << 32) | j for i, j in rows}
    impl_index = {s: i for i, s in enumerate(impl_states)}
    # Primary indices must win when a (malformed) witness table duplicates
    # a table state, so intern back-to-front.
    spec_all_index: dict = {}
    for k in range(total - 1, -1, -1):
        spec_all_index[spec_all[k]] = k

    bytes_memo: dict = {}
    impl_moves_memo: dict[int, list] = {}
    in_mids_memo: dict = {}
    out_fire_memo: dict = {}
    tau_succ_memo: dict = {}
    path_checked = bytearray(n_paths)

    def tau_succ(k: int) -> frozenset:
        cached = tau_succ_memo.get(k)
        if cached is None:
            cached = frozenset(
                spec_all_index.get(t, -1) for t in spec.internal_steps(spec_all[k])
            )
            tau_succ_memo[k] = cached
        return cached

    def path_ok(pidx: int) -> bool:
        if path_checked[pidx]:
            return True
        path = paths[pidx]
        for a, b in zip(path, path[1:]):
            if b not in tau_succ(a):
                return False
        path_checked[pidx] = 1
        return True

    def moves_of(i: int) -> list:
        cached = impl_moves_memo.get(i)
        if cached is None:
            state = impl_states[i]
            acc: dict = {}
            for port, values in cert_stimuli.items():
                name = str(port)
                fire = impl.inputs[port].fire
                for value in values:
                    vb = state_bytes(value, bytes_memo)
                    for s_next in fire(state, value):
                        acc.setdefault(
                            (_KIND_INPUT, name, vb, impl_index.get(s_next, -1)),
                            (port, value),
                        )
            for port, transition in impl.outputs.items():
                name = str(port)
                for value, s_next in transition.fire(state):
                    acc.setdefault(
                        (
                            _KIND_OUTPUT, name,
                            state_bytes(value, bytes_memo),
                            impl_index.get(s_next, -1),
                        ),
                        (port, value),
                    )
            for s_next in impl.internal_steps(state):
                acc.setdefault(
                    (_KIND_INTERNAL, "", b"", impl_index.get(s_next, -1)), (None, None)
                )
            cached = sorted(acc.items())
            impl_moves_memo[i] = cached
        return cached

    for row, (i, j) in enumerate(rows):
        canonical_moves = moves_of(i)
        witness_row = witnesses.rows[row]
        if len(witness_row) != len(canonical_moves):
            return False
        for (key, port_value), (w_kind, p_idx, w_resp) in zip(
            canonical_moves, witness_row
        ):
            kind, _name, _vb, succ_i = key
            if succ_i < 0 or w_kind != kind or not (0 <= p_idx < n_paths):
                return False
            path = paths[p_idx]
            if kind == _KIND_INPUT:
                mid, resp = path[0], path[-1]
                if resp >= primary:
                    return False
                port, value = port_value
                mids_key = (j, port, value)
                mids = in_mids_memo.get(mids_key)
                if mids is None:
                    mids = frozenset(
                        spec_all_index.get(t, -1)
                        for t in spec.inputs[port].fire(spec_states[j], value)
                    )
                    in_mids_memo[mids_key] = mids
                if mid not in mids:
                    return False
            elif kind == _KIND_OUTPUT:
                if path[0] != j:
                    return False
                mid, resp = path[-1], w_resp
                if not (0 <= resp < primary):
                    return False
                port, value = port_value
                fire_key = (mid, port)
                emitted = out_fire_memo.get(fire_key)
                if emitted is None:
                    emitted = frozenset(
                        (spec_value, spec_all_index.get(t, -1))
                        for spec_value, t in spec.outputs[port].fire(spec_all[mid])
                    )
                    out_fire_memo[fire_key] = emitted
                if (value, resp) not in emitted:
                    return False
            else:
                if path[0] != j:
                    return False
                resp = path[-1]
                if resp >= primary:
                    return False
            if not path_ok(p_idx):
                return False
            if ((succ_i << 32) | resp) not in related:
                return False
    return True


def _exhaustive_recheck(
    impl: Module,
    spec: Module,
    certificate: SimulationCertificate,
    cert_stimuli: Mapping[Port, tuple],
) -> SimulationResult:
    """The witness-free recheck: replay all three diagrams for every pair.

    Interns the relation's states into dense ids once — the diagram checks
    then test membership on packed int pairs instead of re-hashing deep
    state tuples per candidate response, and the successor caches key on
    small ints the same way the game search does."""
    relation = certificate.relation
    succ = _GameCache(impl, spec, cert_stimuli)
    id_pairs = [(succ.impl_id(s), succ.spec_id(t)) for s, t in relation]
    related = {(sid << 32) | tid for sid, tid in id_pairs}
    for sid, tid in id_pairs:
        inputs, outputs, internals = succ.impl_moves(sid)
        for port, value, s_next in inputs:
            base = s_next << 32
            if not any(
                (base | t_next) in related
                for t_next in succ.spec_input_responses(tid, port, value)
            ):
                return SimulationResult(
                    False,
                    violation=Violation(
                        "input", succ.impl_states[sid], succ.spec_states[tid],
                        f"input {port}={value!r} has no response inside the relation",
                    ),
                    method="exhaustive",
                )
        for port, value, s_next in outputs:
            base = s_next << 32
            if not any(
                (base | t_next) in related
                for t_next in succ.spec_output_responses(tid, port, value)
            ):
                return SimulationResult(
                    False,
                    violation=Violation(
                        "output", succ.impl_states[sid], succ.spec_states[tid],
                        f"output {port} emits {value!r} with no response inside the relation",
                    ),
                    method="exhaustive",
                )
        for s_next in internals:
            base = s_next << 32
            if not any((base | t_next) in related for t_next in succ.closure(tid)):
                return SimulationResult(
                    False,
                    violation=Violation(
                        "internal", succ.impl_states[sid], succ.spec_states[tid],
                        "internal step has no response inside the relation",
                    ),
                    method="exhaustive",
                )
    return SimulationResult(True, certificate=certificate, method="exhaustive")


def _diagnose(
    succ: _GameCache,
    pairs: list[tuple[int, int]],
    index_of: dict[int, int],
    reason: list["_Move | None"],
    s0: State,
    spec_inits: frozenset[State],
) -> Violation:
    sid = succ.impl_id(s0)
    for t0 in spec_inits:
        idx = index_of[(sid << 32) | succ.spec_id(t0)]
        move = reason[idx]
        if move is not None:
            pair_sid, pair_tid = pairs[idx]
            return Violation(
                move.kind,
                succ.impl_states[pair_sid],
                succ.spec_states[pair_tid],
                f"{move.detail} has no winning spec response",
            )
    return Violation("init", s0, None, f"initial state {s0!r} is not simulated")
