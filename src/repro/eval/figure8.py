"""Figure 8: relative performance normalised to DF-OoO."""

from __future__ import annotations

from typing import Mapping

from .report import figure8_series, render_figure8
from .runner import BenchmarkResult
from .table2 import collect

__all__ = ["figure8_series", "render_figure8", "collect"]


def render(results: Mapping[str, BenchmarkResult]) -> str:
    return render_figure8(results)


def main() -> None:
    print(render(collect()))


if __name__ == "__main__":
    main()
