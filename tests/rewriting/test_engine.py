"""Tests for the rewrite engine driver."""

import pytest

from repro.components import fork, join, pure, sink, split
from repro.core.exprhigh import ExprHigh
from repro.errors import RewriteError
from repro.rewriting.engine import RewriteEngine
from repro.rewriting.rewrite import Match, Rewrite
from repro.rewriting.rules.common import graph_of
from repro.rewriting.rules.pure_gen import pure_compose
from repro.rewriting.rules.reduction import fork_sink_elim, split_join_elim


def pure_chain(length):
    g = ExprHigh()
    previous = None
    for index in range(length):
        name = f"p{index}"
        g.add_node(name, pure("incr"))
        if previous:
            g.connect(previous, "out0", name, "in0")
        previous = name
    g.mark_input(0, "p0", "in0")
    g.mark_output(0, previous, "out0")
    return g


class TestApplyOnce:
    def test_returns_none_without_match(self):
        engine = RewriteEngine()
        g = graph_of({"s": sink()}, [], {0: "s.in0"}, {})
        assert engine.apply_once(g, split_join_elim()) is None
        assert engine.stats.rewrites_applied == 0

    def test_logs_application(self):
        engine = RewriteEngine()
        g = pure_chain(2)
        result = engine.apply_once(g, pure_compose())
        assert result is not None
        assert engine.stats.rewrites_applied == 1
        assert engine.log[0].rewrite == "pure-compose"
        assert engine.stats.per_rewrite["pure-compose"].applied == 1

    def test_matches_tried_counts_candidate_bindings(self):
        engine = RewriteEngine()
        g = pure_chain(3)  # three Pure nodes: anchor tries each of them
        engine.apply_once(g, pure_compose())
        entry = engine.stats.per_rewrite["pure-compose"]
        # The first anchor candidate (p0 in sorted order) already extends to
        # a full match, so exactly two bindings are attempted: p0 and its
        # adjacency-derived partner p1.
        assert entry.matches_tried == 2
        assert engine.stats.matches_tried == 2
        assert entry.match_seconds >= 0.0

    def test_no_match_still_counts_candidates(self):
        engine = RewriteEngine()
        g = graph_of({"s": sink()}, [], {0: "s.in0"}, {})
        assert engine.apply_once(g, split_join_elim()) is None
        entry = engine.stats.per_rewrite["split-join-elim"]
        assert entry.applied == 0
        assert entry.matches_tried == 0  # no Split in the graph: type index is empty


class TestExhaustive:
    def test_chain_collapses_to_one_pure(self):
        engine = RewriteEngine()
        result = engine.apply_exhaustively(pure_chain(5), [pure_compose()])
        pures = [s for s in result.nodes.values() if s.typ == "Pure"]
        assert len(pures) == 1
        assert engine.stats.rewrites_applied == 4

    def test_composed_function_is_correct(self):
        from repro.components import default_environment
        from repro.rewriting import algebra

        engine = RewriteEngine()
        result = engine.apply_exhaustively(pure_chain(4), [pure_compose()])
        (spec,) = [s for s in result.nodes.values() if s.typ == "Pure"]
        env = default_environment()
        fn = algebra.ensure(env, str(spec.param("fn")))
        assert fn(0) == 4

    def test_fixpoint_with_multiple_rules(self):
        engine = RewriteEngine()
        g = ExprHigh()
        g.add_node("f", fork(2))
        g.add_node("snk", sink())
        g.add_node("p", pure("incr"))
        g.connect("f", "out1", "snk", "in0")
        g.connect("f", "out0", "p", "in0")
        g.mark_input(0, "f", "in0")
        g.mark_output(0, "p", "out0")
        result = engine.apply_exhaustively(g, [fork_sink_elim(), pure_compose()])
        # fork+sink -> id wire, then id absorbed? pure-compose needs two
        # Pures; the id wire is a Pure so it composes with p.
        assert all(s.typ == "Pure" for s in result.nodes.values())
        assert len(result.nodes) == 1

    def test_divergence_guard(self):
        # A rewrite that rewrites a Pure into two Pures diverges; the engine
        # must stop at max_steps.
        def explode_rhs(match: Match):
            return graph_of(
                {"a": pure("incr"), "b": pure("incr")},
                [("a.out0", "b.in0")],
                {0: "a.in0"},
                {0: "b.out0"},
            )

        diverging = Rewrite(
            name="exploding",
            lhs=graph_of({"a": pure("incr")}, [], {0: "a.in0"}, {0: "a.out0"}),
            rhs=explode_rhs,
        )
        engine = RewriteEngine()
        with pytest.raises(RewriteError):
            engine.apply_exhaustively(pure_chain(1), [diverging], max_steps=25)

    def test_stats_track_time(self):
        engine = RewriteEngine()
        engine.apply_exhaustively(pure_chain(3), [pure_compose()])
        assert engine.stats.seconds >= 0.0
        assert engine.stats.matches_tried >= 2

    def test_worklist_matches_full_scan_output(self):
        from repro.exec.hashing import graph_fingerprint

        worklist = RewriteEngine().apply_exhaustively(
            pure_chain(6), [fork_sink_elim(), pure_compose()]
        )
        scan = RewriteEngine().apply_exhaustively(
            pure_chain(6), [fork_sink_elim(), pure_compose()], use_worklist=False
        )
        assert graph_fingerprint(worklist) == graph_fingerprint(scan)

    def test_worklist_restricts_rescans(self):
        # split-join-elim fails its first full scan (no Split in a pure
        # chain) and is then only re-matched against the dirty region each
        # time pure-compose fires.
        engine = RewriteEngine()
        engine.apply_exhaustively(pure_chain(8), [split_join_elim(), pure_compose()])
        assert engine.stats.worklist_scans > 0
        scan_engine = RewriteEngine()
        scan_engine.apply_exhaustively(
            pure_chain(8), [split_join_elim(), pure_compose()], use_worklist=False
        )
        assert engine.stats.full_scans < scan_engine.stats.full_scans

    def test_escape_hatch_never_uses_worklist(self):
        engine = RewriteEngine()
        engine.apply_exhaustively(pure_chain(5), [pure_compose()], use_worklist=False)
        assert engine.stats.worklist_scans == 0
        assert engine.stats.full_scans > 0


class TestVerifiedFraction:
    def test_empty_log_is_fully_verified(self):
        assert RewriteEngine().verified_fraction() == 1.0

    def test_mixed_log(self):
        engine = RewriteEngine()
        engine.apply_exhaustively(pure_chain(3), [pure_compose()])
        assert engine.verified_fraction() == 1.0
