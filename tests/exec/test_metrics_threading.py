"""ExecutorMetrics must tolerate concurrent recording (jobs > 1)."""

import threading

from repro.api import Session
from repro.benchmarks import matvec
from repro.eval.runner import FLOWS
from repro.exec.metrics import ExecutorMetrics, UnitMetric


class TestConcurrentRecording:
    def test_hammer_record_from_many_threads(self):
        """Regression: list appends raced before record() took a lock."""
        metrics = ExecutorMetrics()
        threads, per_thread = 16, 500
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for index in range(per_thread):
                metrics.record(
                    UnitMetric(
                        uid=f"{worker}:{index}",
                        seconds=0.001,
                        cached=index % 2 == 0,
                        mode="pool",
                        retried=index % 7 == 0,
                    )
                )

        pool = [threading.Thread(target=hammer, args=(n,)) for n in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        total = threads * per_thread
        assert len(metrics.snapshot()) == total
        assert metrics.hits + metrics.executed == total
        assert metrics.hits == total // 2
        data = metrics.to_dict()
        assert data["units"] == total
        assert data["retries"] == metrics.retries

    def test_concurrent_readers_see_consistent_aggregates(self):
        """Aggregates read a snapshot, so they never crash mid-append."""
        metrics = ExecutorMetrics()
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            index = 0
            while not stop.is_set():
                metrics.record(UnitMetric(uid=str(index), seconds=0.0, cached=False))
                index += 1

        def reader() -> None:
            try:
                while not stop.is_set():
                    data = metrics.to_dict()
                    assert data["hits"] + data["executed"] == data["units"]
                    metrics.summary()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [threading.Thread(target=writer) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in pool:
            thread.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for thread in pool:
            thread.join()
        timer.cancel()
        assert not errors

    def test_parallel_session_counts_every_unit(self):
        """With jobs > 1 no unit's metric is lost or double-counted."""
        session = Session(jobs=2, use_cache=False)
        session.bench_many(
            ["matvec", "fuzz"], {"matvec": matvec(4), "fuzz": matvec(3)}
        )
        snapshot = session.metrics()
        assert snapshot.units == 2 * len(FLOWS)
        assert snapshot.executed == 2 * len(FLOWS)
        assert snapshot.hits == 0
