"""Tests for the e-graph oracle (the egg substitute of section 3.2)."""

import pytest

from repro.components import default_environment
from repro.rewriting import algebra
from repro.rewriting.egraph import EGraph, parse_term, render_term, simplify, term_size


class TestTermSyntax:
    @pytest.mark.parametrize(
        "text",
        ["id", "tup(mod)", "comp(a,b)", "par(comp(a,b),first(c))", "comp(dup,par(fst,snd))"],
    )
    def test_parse_render_round_trip(self, text):
        assert render_term(parse_term(text)) == text

    def test_term_size(self):
        assert term_size(parse_term("id")) == 1
        assert term_size(parse_term("comp(a,b)")) == 3


class TestEGraphCore:
    def test_hashcons_shares_subterms(self):
        eg = EGraph()
        a = eg.add_term(parse_term("comp(x,y)"))
        b = eg.add_term(parse_term("comp(x,y)"))
        assert eg.find(a) == eg.find(b)

    def test_union_merges_classes(self):
        eg = EGraph()
        a = eg.add_term(parse_term("a"))
        b = eg.add_term(parse_term("b"))
        assert eg.find(a) != eg.find(b)
        eg.union(a, b)
        assert eg.find(a) == eg.find(b)

    def test_congruence_closure(self):
        eg = EGraph()
        fa = eg.add_term(parse_term("first(a)"))
        fb = eg.add_term(parse_term("first(b)"))
        a = eg.add_term(parse_term("a"))
        b = eg.add_term(parse_term("b"))
        eg.union(a, b)
        eg.rebuild()
        assert eg.find(fa) == eg.find(fb)

    def test_extract_returns_smallest(self):
        eg = EGraph()
        big = eg.add_term(parse_term("comp(comp(a,id),id)"))
        small = eg.add_term(parse_term("a"))
        eg.union(big, small)
        eg.rebuild()
        assert render_term(eg.extract(big)) == "a"


class TestSimplification:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("comp(dup,par(fst,snd))", "id"),  # Join of a Split disappears
            ("comp(id,comp(tup(mod),id))", "tup(mod)"),
            ("comp(comp(a,id),comp(id,b))", "comp(a,b)"),
            ("first(id)", "id"),
            ("comp(swap,swap)", "id"),
            ("comp(dup,fst)", "id"),  # Split of a Join, left projection
            ("comp(dup,snd)", "id"),
            ("comp(comp(dup,par(f,g)),fst)", "f"),  # project a fanout
            ("comp(dup,par(comp(fst,f),comp(snd,g)))", "par(f,g)"),
        ],
    )
    def test_simplifies(self, before, after):
        assert simplify(before) == after

    def test_irreducible_terms_survive(self):
        assert simplify("comp(dup,par(f,g))") == "comp(dup,par(f,g))"

    def test_simplification_preserves_semantics(self):
        env = default_environment()
        cases = [
            ("comp(comp(dup,par(incr,ne0)),fst)", 3),
            ("comp(dup,par(comp(fst,incr),comp(snd,incr)))", (1, 2)),
            ("comp(id,comp(incr,id))", 7),
        ]
        for term, arg in cases:
            original = algebra.ensure(env, term)
            reduced = algebra.ensure(env, simplify(term))
            assert original(arg) == reduced(arg)

    def test_simplified_is_never_larger(self):
        terms = [
            "comp(dup,par(fst,snd))",
            "comp(comp(a,b),comp(c,d))",
            "par(first(x),second(y))",
        ]
        for term in terms:
            assert term_size(parse_term(simplify(term))) <= term_size(parse_term(term))
