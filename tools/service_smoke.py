"""CI smoke test for the verification service.

Boots the real CLI entry point (``repro serve``) as a subprocess on a
free port and walks the service contract end to end:

1. the server announces its resolved port on stdout;
2. a ``check_obligations`` job streams NDJSON status lines ending
   ``done``;
3. the proof certificate named by the result is served from
   ``GET /v1/certificates/{hash}`` and carries the requested hash;
4. a second identical submission is answered synchronously from the
   content-addressed result store (``from_store``), byte-identical to
   the first, and the store reports a hit;
5. ``POST /v1/admin/shutdown`` shuts the server down gracefully and the
   process exits 0.

Exits non-zero (with a traceback) on the first violated expectation.
Stdlib + repro only; run with ``PYTHONPATH=src python tools/service_smoke.py``.
"""

import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def boot_server(cache_dir: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_CACHE_DIR"] = cache_dir
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=ROOT,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit(f"server did not announce a port: {line!r}")
    return process, int(match.group(1))


def request(port: int, method: str, path: str, body: dict | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        process, port = boot_server(tmp)
        try:
            # -- NDJSON streaming ------------------------------------------
            status, _, body = request(
                port, "POST", "/v1/jobs",
                {"kind": "check_obligations", "params": {"rules": ["mux_combine"]}},
            )
            assert status in (200, 202), f"submit answered {status}: {body!r}"
            job = json.loads(body)

            status, headers, body = request(port, "GET", f"/v1/jobs/{job['id']}?watch=1")
            assert status == 200, f"watch answered {status}"
            assert headers.get("Content-Type") == "application/x-ndjson", headers
            lines = [json.loads(line) for line in body.decode().splitlines()]
            assert lines, "watch stream produced no status lines"
            versions = [line["version"] for line in lines]
            assert versions == sorted(versions), f"unordered stream: {versions}"
            assert lines[-1]["state"] == "done", f"job ended {lines[-1]['state']}"
            print(f"ok: watch streamed {len(lines)} NDJSON line(s), job done")

            # -- certificate served from the store -------------------------
            status, _, body = request(port, "GET", f"/v1/jobs/{job['id']}/result")
            assert status == 200, f"result answered {status}"
            [outcome] = json.loads(body)["outcomes"]
            assert outcome["holds"], "mux_combine obligation did not hold"
            cert_hash = outcome["certificate_hashes"][0]
            status, _, body = request(port, "GET", f"/v1/certificates/{cert_hash}")
            assert status == 200, f"certificate answered {status}"
            certificate = json.loads(body)
            assert certificate["kind"] == "SimulationCertificate"
            assert certificate["hash"] == cert_hash
            print(f"ok: certificate {cert_hash[:12]}... served and hash-checked")

            # -- second identical request hits the store -------------------
            status, _, body = request(
                port, "POST", "/v1/jobs",
                {"kind": "check_obligations", "params": {"rules": ["mux_combine"]}},
            )
            assert status == 200, f"repeat submit answered {status} (expected 200)"
            repeat = json.loads(body)
            assert repeat["state"] == "done" and repeat["from_store"], repeat
            status, _, repeat_body = request(
                port, "GET", f"/v1/jobs/{repeat['id']}/result"
            )
            assert status == 200
            _, _, first_body = request(port, "GET", f"/v1/jobs/{job['id']}/result")
            first = json.dumps(json.loads(first_body), sort_keys=True)
            second = json.dumps(json.loads(repeat_body), sort_keys=True)
            assert first == second, "store-served result diverged from computed one"
            status, _, body = request(port, "GET", "/v1/metrics")
            metrics = json.loads(body)
            assert metrics["store"]["hits"] >= 1, metrics["store"]
            print(f"ok: repeat answered from store ({metrics['store']['hits']} hit(s))")

            # -- graceful shutdown -----------------------------------------
            status, _, body = request(port, "POST", "/v1/admin/shutdown")
            assert status == 200, f"shutdown answered {status}"
            assert json.loads(body)["state"] == "shutting-down"
            code = process.wait(timeout=60)
            assert code == 0, f"server exited {code} after graceful shutdown"
            print("ok: graceful shutdown, exit code 0")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"({time.perf_counter() - start:.1f}s)")
    raise SystemExit(code)
