"""Table 3: LUT, FF, and DSP counts."""

from __future__ import annotations

from typing import Mapping

from .report import dsp_table, ff_table, lut_table
from .runner import BenchmarkResult
from .table2 import collect


def render(results: Mapping[str, BenchmarkResult]) -> str:
    """Render the three Table 3 sub-tables."""
    return "\n\n".join(
        table.render() for table in (lut_table(results), ff_table(results), dsp_table(results))
    )


def main() -> None:
    print(render(collect()))


if __name__ == "__main__":
    main()
