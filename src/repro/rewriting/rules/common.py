"""Shared helpers for defining rewrite rules and their obligations."""

from __future__ import annotations

from typing import Iterable, Mapping

from ...components import default_environment
from ...core.environment import Environment
from ...core.exprhigh import ExprHigh
from ...core.ports import IOPort


def obligation_env(capacity: int = 1, functions: Mapping[str, tuple] = ()) -> Environment:
    """A small-capacity environment for bounded obligation checking."""
    env = default_environment(capacity=capacity)
    for name, (fn, arity) in dict(functions).items():
        env.register_function(name, fn, arity)
    return env


def io_values(per_index: Mapping[int, Iterable[object]]) -> dict:
    """Stimuli keyed by interface index."""
    return {IOPort(index): tuple(values) for index, values in per_index.items()}


def graph_of(nodes: Mapping[str, object], connections, inputs, outputs) -> ExprHigh:
    """Assemble an ExprHigh from compact descriptions.

    *connections* is an iterable of ``("src.port", "dst.port")`` strings,
    *inputs*/*outputs* map interface indices to ``"node.port"`` strings.
    """
    graph = ExprHigh()
    for name, spec in nodes.items():
        graph.add_node(name, spec)
    for src, dst in connections:
        src_node, _, src_port = src.partition(".")
        dst_node, _, dst_port = dst.partition(".")
        graph.connect(src_node, src_port, dst_node, dst_port)
    for index, endpoint in inputs.items():
        node, _, port = endpoint.partition(".")
        graph.mark_input(index, node, port)
    for index, endpoint in outputs.items():
        node, _, port = endpoint.partition(".")
        graph.mark_output(index, node, port)
    return graph
