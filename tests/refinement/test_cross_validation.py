"""Cross-validation: the simulation game vs. the trace semantics.

Refinement implies trace inclusion (section 4.4).  For every rewrite
obligation in the library the two checkers must agree: obligations the game
discharges have no trace counterexample, and obligations the game refutes
have one (within the explored depth).  Disagreement would mean a bug in one
of the two semantics — this suite is the library checking itself.
"""

import pytest

from repro.errors import RefinementError
from repro.refinement.checker import check_rewrite_obligation, check_rewrite_obligation_traces
from repro.rewriting.rules import combine, extra, pure_gen, reduction, shuffle

AGREEING_RULES = [
    combine.mux_combine,
    combine.merge_combine,
    reduction.split_join_elim,
    reduction.fork_sink_elim,
    reduction.pure_id_elim,
    pure_gen.op1_to_pure,
    pure_gen.op2_to_pure,
    pure_gen.fork_lift_pure,
    pure_gen.fork_to_pure,
    pure_gen.pure_compose,
    shuffle.join_pure_left,
    shuffle.join_pure_right,
    shuffle.split_pure_left,
    shuffle.split_pure_right,
    shuffle.join_assoc,
    shuffle.join_swap,
    extra.split_swap,
    extra.fork_assoc,
    extra.merge_swap,
    extra.buffer_elim,
]


@pytest.mark.parametrize("factory", AGREEING_RULES, ids=lambda f: f.__name__)
def test_discharged_obligations_have_no_trace_counterexample(factory):
    rewrite = factory()
    for lhs, rhs, env, stimuli in rewrite.obligation():
        check_rewrite_obligation(lhs, rhs, env, stimuli)
        check_rewrite_obligation_traces(lhs, rhs, env, stimuli, depth=4)


def test_refuted_obligation_has_trace_witness():
    """join-split-elim fails the game; traces must find a witness too."""
    rewrite = reduction.join_split_elim()
    (lhs, rhs, env, stimuli) = next(iter(rewrite.obligation()))
    with pytest.raises(RefinementError):
        check_rewrite_obligation(lhs, rhs, env, stimuli)
    with pytest.raises(RefinementError):
        check_rewrite_obligation_traces(lhs, rhs, env, stimuli, depth=3)


def test_branch_combine_refutation_needs_depth():
    """branch-combine's counterexample is 7 events deep: shallow trace
    exploration misses it, the game does not — bounded-depth trace checking
    is the weaker oracle, which is why the game is the primary checker."""
    rewrite = combine.branch_combine()
    (lhs, rhs, env, stimuli) = next(iter(rewrite.obligation()))
    with pytest.raises(RefinementError):
        check_rewrite_obligation(lhs, rhs, env, stimuli)
    # depth 4 is too shallow to see the reordering
    check_rewrite_obligation_traces(lhs, rhs, env, stimuli, depth=4)
    with pytest.raises(RefinementError):
        check_rewrite_obligation_traces(lhs, rhs, env, stimuli, depth=7)
