"""Tests for the dot parser and printer."""

import pytest

from repro.components import branch, fork, init, mux, operator, pure, tagger
from repro.core.exprhigh import Endpoint, ExprHigh
from repro.core.types import I32
from repro.dot import parse_dot, print_dot
from repro.errors import DotParseError

EXAMPLE = """
Digraph gcd {
  // the loop steering
  "mux0" [type = "Mux"];
  "branch0" [type = "Branch"];
  "init0" [type = "Init", value = "false"];
  "fork0" [type = "Fork", n = "2"];
  "body" [type = "Pure", fn = "gcd_step"];
  "split0" [type = "Split"];
  "_in0" [type = "Input", index = "0"];
  "_out0" [type = "Output", index = "0"];

  "mux0" -> "body" [from = "out0", to = "in0"];
  "body" -> "split0" [from = "out0", to = "in0"];
  "split0" -> "branch0" [from = "out0", to = "in0"];
  "split0" -> "fork0" [from = "out1", to = "in0"];
  "fork0" -> "branch0" [from = "out0", to = "cond"];
  "fork0" -> "init0" [from = "out1", to = "in0"];
  "init0" -> "mux0" [from = "out0", to = "cond"];
  "branch0" -> "mux0" [from = "out0", to = "in0"];
  "_in0" -> "mux0" [to = "in1"];
  "branch0" -> "_out0" [from = "out1"];
}
"""


class TestParse:
    def test_parses_example(self):
        graph = parse_dot(EXAMPLE)
        assert set(graph.nodes) == {"mux0", "branch0", "init0", "fork0", "body", "split0"}
        assert graph.nodes["body"].param("fn") == "gcd_step"
        assert graph.inputs[0] == Endpoint("mux0", "in1")
        assert graph.outputs[0] == Endpoint("branch0", "out1")
        graph.validate()

    def test_default_ports_from_type(self):
        graph = parse_dot(EXAMPLE)
        assert graph.nodes["mux0"].in_ports == ("cond", "in0", "in1")
        assert graph.nodes["fork0"].out_ports == ("out0", "out1")

    def test_attribute_decoding(self):
        graph = parse_dot('Digraph g { "b" [type = "Buffer", slots = "3", type2 = "x"]; }')
        assert graph.nodes["b"].param("slots") == 3

    def test_operator_arity(self):
        graph = parse_dot('Digraph g { "op" [type = "Operator", op = "add", arity = "2"]; }')
        assert graph.nodes["op"].in_ports == ("in0", "in1")

    def test_missing_type_rejected(self):
        with pytest.raises(DotParseError):
            parse_dot('Digraph g { "n" [foo = "bar"]; }')

    def test_unknown_type_without_ports_rejected(self):
        with pytest.raises(DotParseError):
            parse_dot('Digraph g { "n" [type = "Alien"]; }')

    def test_unknown_type_with_ports_accepted(self):
        graph = parse_dot('Digraph g { "n" [type = "Alien", in = "a b", out = "c"]; }')
        assert graph.nodes["n"].in_ports == ("a", "b")

    def test_edge_needs_port_attrs(self):
        src = 'Digraph g { "a" [type = "Fork"]; "b" [type = "Sink"]; "a" -> "b"; }'
        with pytest.raises(DotParseError):
            parse_dot(src)

    def test_bad_header_rejected(self):
        with pytest.raises(DotParseError):
            parse_dot("graph g { }")

    def test_unterminated_string_rejected(self):
        with pytest.raises(DotParseError):
            parse_dot('Digraph g { "unclosed }')

    def test_comments_skipped(self):
        graph = parse_dot('Digraph g {\n # hash comment\n // slash comment\n "n" [type = "Sink"];\n}')
        assert "n" in graph.nodes


class TestRoundTrip:
    def _rich_graph(self):
        g = ExprHigh()
        g.add_node("m", mux(type=I32))
        g.add_node("b", branch())
        g.add_node("i", init(value=False))
        g.add_node("f", fork(2))
        g.add_node("p", pure("gcd_step"))
        g.add_node("s", operator("add", 2))
        g.add_node("t", tagger(tags=8))
        g.connect("m", "out0", "p", "in0")
        g.connect("p", "out0", "b", "in0")
        g.connect("f", "out0", "b", "cond")
        g.connect("f", "out1", "i", "in0")
        g.connect("i", "out0", "m", "cond")
        g.connect("b", "out0", "m", "in0")
        g.connect("t", "out0", "s", "in0")
        g.connect("s", "out0", "t", "in1")
        g.mark_input(0, "m", "in1")
        g.mark_input(1, "f", "in0")
        g.mark_input(2, "t", "in0")
        g.mark_input(3, "s", "in1")
        g.mark_output(0, "b", "out1")
        g.mark_output(1, "t", "out1")
        return g

    def test_print_parse_round_trip(self):
        g = self._rich_graph()
        reparsed = parse_dot(print_dot(g))
        assert reparsed.nodes == g.nodes
        assert reparsed.connections == g.connections
        assert reparsed.inputs == g.inputs
        assert reparsed.outputs == g.outputs

    def test_round_trip_preserves_types(self):
        g = self._rich_graph()
        reparsed = parse_dot(print_dot(g))
        assert reparsed.nodes["m"].param("type") == I32

    def test_printed_graph_is_stable(self):
        g = self._rich_graph()
        once = print_dot(g)
        twice = print_dot(parse_dot(once))
        assert once == twice

    def test_cmerge_and_reorg_round_trip(self):
        from repro.components import cmerge, reorg, sink

        g = ExprHigh()
        g.add_node("cm", cmerge())
        g.add_node("rg", reorg("swap"))
        g.add_node("sk", sink())
        g.connect("cm", "out0", "rg", "in0")
        g.connect("cm", "index", "sk", "in0")
        g.mark_input(0, "cm", "in0")
        g.mark_input(1, "cm", "in1")
        g.mark_output(0, "rg", "out0")
        reparsed = parse_dot(print_dot(g))
        assert reparsed.nodes == g.nodes
        assert reparsed.nodes["rg"].param("fn") == "swap"

    def test_cmerge_default_ports(self):
        graph = parse_dot('Digraph g { "c" [type = "CMerge"]; }')
        assert graph.nodes["c"].out_ports == ("out0", "index")
