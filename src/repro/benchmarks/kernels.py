"""The six evaluated benchmarks (section 6.1), as mini-IR programs.

All are the kernels of Elakhras et al. that the paper evaluates:

* **bicg, mvt, gemm** — PolyBench kernels whose inner loops carry a
  long-latency floating-point dependence while outer iterations are
  independent; bicg additionally stores inside the inner loop body, which
  is the case Graphiti must refuse (section 6.2).
* **matvec** — floating-point matrix-vector product, the high-tag-count
  benchmark (50 tags, the Table 3 flip-flop blow-up).
* **gsum-single / gsum-many** — conditional reduction; *single* is one
  inherently sequential accumulation (tagging can only add overhead),
  *many* is several independent invocations with a small tag budget.

Sizes are scaled to keep simulations in seconds; tag counts follow the
relative budgets of the original evaluation (matvec large, gsum small).
``img-avg`` is omitted exactly as in the paper: its out-of-order dimension
is branch-body reordering, not loop reordering.
"""

from __future__ import annotations

import numpy as np

from ..hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    Select,
    StoreOp,
    UnOp,
    Var,
)

BENCHMARKS = ("bicg", "gemm", "gsum-many", "gsum-single", "matvec", "mvt")


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _reduction_loop(name: str, count: int, extra: dict | None = None) -> DoWhile:
    """The canonical inner reduction: acc += A[ai] * x[j] over *count* steps.

    State: acc (f32 accumulator), j (inner index), ai (flat matrix index),
    i (outer row, carried for the epilogue store).
    """
    body = {
        "acc": BinOp(
            "fadd",
            Var("acc"),
            BinOp("fmul", Load("A", Var("ai")), Load("x", Var("j"))),
        ),
        "j": BinOp("add", Var("j"), Const(1)),
        "ai": BinOp("add", Var("ai"), Const(1)),
        "i": Var("i"),
    }
    return DoWhile(
        name=name,
        state=("acc", "j", "ai", "i"),
        body=body,
        condition=BinOp("lt", Var("j"), Const(count)),
        result_vars=("acc", "i"),
        **(extra or {}),
    )


def matvec(n: int = 30) -> Program:
    """y = A·x — one reduction loop per row, 50 tags (the paper's count)."""
    rng = _rng(7)
    kernel = Kernel(
        name="matvec",
        loop=_reduction_loop("matvec_row", n),
        outer=(OuterLoop("i", n),),
        init={
            "acc": Const(0.0),
            "j": Const(0),
            "ai": BinOp("mul", Var("i"), Const(n)),
            "i": Var("i"),
        },
        epilogue=(StoreOp("y", Var("i"), Var("acc")),),
        tags=50,
    )
    arrays = {
        "A": rng.standard_normal(n * n).astype(np.float64),
        "x": rng.standard_normal(n).astype(np.float64),
        "y": np.zeros(n, dtype=np.float64),
    }
    return Program("matvec", arrays, [kernel])


def mvt(n: int = 21) -> Program:
    """x1 += A·y1 ; x2 += Aᵀ·y2 — two reduction sweeps, few tags (4)."""
    rng = _rng(11)
    loop1 = DoWhile(
        name="mvt_row",
        state=("acc", "j", "ai", "i"),
        body={
            "acc": BinOp("fadd", Var("acc"), BinOp("fmul", Load("A", Var("ai")), Load("y1", Var("j")))),
            "j": BinOp("add", Var("j"), Const(1)),
            "ai": BinOp("add", Var("ai"), Const(1)),
            "i": Var("i"),
        },
        condition=BinOp("lt", Var("j"), Const(n)),
        result_vars=("acc", "i"),
    )
    loop2 = DoWhile(
        name="mvt_col",
        state=("acc", "j", "ai", "i"),
        body={
            "acc": BinOp("fadd", Var("acc"), BinOp("fmul", Load("A", Var("ai")), Load("y2", Var("j")))),
            "j": BinOp("add", Var("j"), Const(1)),
            "ai": BinOp("add", Var("ai"), Const(n)),  # column walk
            "i": Var("i"),
        },
        condition=BinOp("lt", Var("j"), Const(n)),
        result_vars=("acc", "i"),
    )
    kernels = [
        Kernel(
            name="mvt_x1",
            loop=loop1,
            outer=(OuterLoop("i", n),),
            init={
                "acc": Load("x1", Var("i")),
                "j": Const(0),
                "ai": BinOp("mul", Var("i"), Const(n)),
                "i": Var("i"),
            },
            epilogue=(StoreOp("x1", Var("i"), Var("acc")),),
            tags=6,
        ),
        Kernel(
            name="mvt_x2",
            loop=loop2,
            outer=(OuterLoop("i", n),),
            init={
                "acc": Load("x2", Var("i")),
                "j": Const(0),
                "ai": Var("i"),
                "i": Var("i"),
            },
            epilogue=(StoreOp("x2", Var("i"), Var("acc")),),
            tags=6,
        ),
    ]
    arrays = {
        "A": rng.standard_normal(n * n).astype(np.float64),
        "y1": rng.standard_normal(n).astype(np.float64),
        "y2": rng.standard_normal(n).astype(np.float64),
        "x1": rng.standard_normal(n).astype(np.float64),
        "x2": rng.standard_normal(n).astype(np.float64),
    }
    return Program("mvt", arrays, kernels)


def bicg(n: int = 30) -> Program:
    """q = A·p and s = Aᵀ·r in one sweep — with ``s[j] +=`` **inside** the
    inner loop body.  That in-body store is what makes the loop effectful:
    Graphiti refuses the transform (matching DF-IO), while DF-OoO reorders
    the writes — the bug of section 6.2."""
    rng = _rng(13)
    loop = DoWhile(
        name="bicg_row",
        state=("qacc", "j", "ai", "i", "ri"),
        body={
            "qacc": BinOp("fadd", Var("qacc"), BinOp("fmul", Load("A", Var("ai")), Load("p", Var("j")))),
            "j": BinOp("add", Var("j"), Const(1)),
            "ai": BinOp("add", Var("ai"), Const(1)),
            "i": Var("i"),
            "ri": Var("ri"),
        },
        condition=BinOp("lt", Var("j"), Const(n)),
        result_vars=("qacc", "i"),
        stores=(
            # s[j-1] += r[i] * A[i][j-1]  (indices already advanced)
            StoreOp(
                "s",
                BinOp("sub", Var("j"), Const(1)),
                BinOp(
                    "fadd",
                    Load("s", BinOp("sub", Var("j"), Const(1))),
                    BinOp("fmul", Var("ri"), Load("A", BinOp("sub", Var("ai"), Const(1)))),
                ),
            ),
        ),
    )
    kernel = Kernel(
        name="bicg",
        loop=loop,
        outer=(OuterLoop("i", n),),
        init={
            "qacc": Const(0.0),
            "j": Const(0),
            "ai": BinOp("mul", Var("i"), Const(n)),
            "i": Var("i"),
            "ri": Load("r", Var("i")),
        },
        epilogue=(StoreOp("q", Var("i"), Var("qacc")),),
        tags=8,
    )
    rngA = rng.standard_normal(n * n).astype(np.float64)
    arrays = {
        "A": rngA,
        "p": rng.standard_normal(n).astype(np.float64),
        "r": rng.standard_normal(n).astype(np.float64),
        "s": np.zeros(n, dtype=np.float64),
        "q": np.zeros(n, dtype=np.float64),
    }
    return Program("bicg", arrays, [kernel])


def gemm(n: int = 20) -> Program:
    """C = α·A·B — the three-deep loop nest; inner reduction per (i, j).

    The body multiplies by α every step (second FP multiplier) and walks B
    with an explicit integer multiply, matching the paper's DSP footprint
    (2 × fmul + 1 × mul = 11 DSPs)."""
    rng = _rng(17)
    loop = DoWhile(
        name="gemm_dot",
        state=("acc", "k", "ai", "j", "i", "alpha"),
        body={
            "acc": BinOp(
                "fadd",
                Var("acc"),
                BinOp(
                    "fmul",
                    Var("alpha"),
                    BinOp(
                        "fmul",
                        Load("A", Var("ai")),
                        Load("B", BinOp("add", BinOp("mul", Var("k"), Const(n)), Var("j"))),
                    ),
                ),
            ),
            "k": BinOp("add", Var("k"), Const(1)),
            "ai": BinOp("add", Var("ai"), Const(1)),
            "j": Var("j"),
            "i": Var("i"),
            "alpha": Var("alpha"),
        },
        condition=BinOp("lt", Var("k"), Const(n)),
        result_vars=("acc", "i", "j"),
    )
    kernel = Kernel(
        name="gemm",
        loop=loop,
        outer=(OuterLoop("i", n), OuterLoop("j", n)),
        init={
            "acc": Const(0.0),
            "k": Const(0),
            "ai": BinOp("mul", Var("i"), Const(n)),
            "j": Var("j"),
            "i": Var("i"),
            "alpha": Load("alpha", Const(0)),
        },
        epilogue=(
            StoreOp("C", BinOp("add", BinOp("mul", Var("i"), Const(n)), Var("j")), Var("acc")),
        ),
        tags=32,
    )
    arrays = {
        "A": rng.standard_normal(n * n).astype(np.float64),
        "B": rng.standard_normal(n * n).astype(np.float64),
        "C": np.zeros(n * n, dtype=np.float64),
        "alpha": np.array([1.5], dtype=np.float64),
    }
    return Program("gemm", arrays, [kernel])


def _gsum_loop(name: str, count: int) -> DoWhile:
    """Conditional polynomial accumulation: the gsum inner loop.

    ``if d[2i] >= 0: s += (x·x)·(x·0.5) + x·2.0`` — if-converted into a
    Select; four FP multiplies and strided (integer-multiplied) indexing
    reproduce the paper's 22-DSP footprint."""
    x = Load("d", BinOp("mul", Var("j"), Const(2)))
    poly = BinOp(
        "fadd",
        BinOp("fmul", BinOp("fmul", x, x), BinOp("fmul", x, Const(0.5))),
        BinOp("fmul", x, Const(2.0)),
    )
    guarded = Select(UnOp("not", BinOp("lt", x, Const(0.0))), poly, Const(0.0))
    return DoWhile(
        name=name,
        state=("s", "j", "lim"),
        body={
            "s": BinOp("fadd", Var("s"), guarded),
            "j": BinOp("add", BinOp("mul", Var("j"), Const(1)), Const(1)),
            "lim": Var("lim"),
        },
        condition=BinOp("lt", Var("j"), Var("lim")),
        result_vars=("s",),
    )


def gsum_single(n: int = 800) -> Program:
    """One long accumulation: inherently sequential, tags only add cost."""
    rng = _rng(19)
    kernel = Kernel(
        name="gsum_single",
        loop=_gsum_loop("gsum_acc", n),
        outer=(OuterLoop("one", 1),),
        init={"s": Const(0.0), "j": Const(0), "lim": Const(n)},
        epilogue=(StoreOp("out", Const(0), Var("s")),),
        tags=2,
        sequential_outer=True,
    )
    arrays = {
        "d": rng.standard_normal(2 * n).astype(np.float64),
        "out": np.zeros(1, dtype=np.float64),
    }
    return Program("gsum-single", arrays, [kernel])


def gsum_many(instances: int = 10, per_instance: int = 800) -> Program:
    """Independent gsum invocations; a small tag budget limits the overlap
    to a few in-flight instances, reproducing the paper's ~2× (not ~10×)
    gain over the in-order circuit."""
    rng = _rng(23)
    x = Load("d", BinOp("add", Var("base"), BinOp("mul", Var("j"), Const(2))))
    poly = BinOp(
        "fadd",
        BinOp("fmul", BinOp("fmul", x, x), BinOp("fmul", x, Const(0.5))),
        BinOp("fmul", x, Const(2.0)),
    )
    guarded = Select(UnOp("not", BinOp("lt", x, Const(0.0))), poly, Const(0.0))
    loop = DoWhile(
        name="gsum_acc",
        state=("s", "j", "base", "inst"),
        body={
            "s": BinOp("fadd", Var("s"), guarded),
            "j": BinOp("add", Var("j"), Const(1)),
            "base": Var("base"),
            "inst": Var("inst"),
        },
        condition=BinOp("lt", Var("j"), Const(per_instance)),
        result_vars=("s", "inst"),
    )
    kernel = Kernel(
        name="gsum_many",
        loop=loop,
        outer=(OuterLoop("inst", instances),),
        init={
            "s": Const(0.0),
            "j": Const(0),
            "base": BinOp("mul", Var("inst"), Const(2 * per_instance)),
            "inst": Var("inst"),
        },
        epilogue=(StoreOp("out", Var("inst"), Var("s")),),
        tags=6,
    )
    arrays = {
        "d": rng.standard_normal(2 * instances * per_instance).astype(np.float64),
        "out": np.zeros(instances, dtype=np.float64),
    }
    return Program("gsum-many", arrays, [kernel])


def load_benchmark(name: str) -> Program:
    """Construct a benchmark program by its paper name."""
    factories = {
        "bicg": bicg,
        "gemm": gemm,
        "gsum-many": gsum_many,
        "gsum-single": gsum_single,
        "matvec": matvec,
        "mvt": mvt,
    }
    try:
        return factories[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; choose from {BENCHMARKS}") from None
