"""The content-addressed result store and certificate index.

:class:`ResultStore` wraps the same on-disk
:class:`~repro.exec.cache.ResultCache` machinery the executor uses, with
service-level keys: a job's store key is a SHA-256 over ``("service-job",
TOOL_VERSION, kind, canonical params)`` — see
:func:`repro.service.ops.canonical_params` — so identical requests from
different clients (or different tenants of one server) dedupe to a single
computation, and bumping the tool version invalidates every stale entry,
exactly like the executor cache.

The store also indexes **simulation certificates** by content hash.
Certificates land in the shared cache directory as a side effect of
``check_obligations`` jobs (the certified fast path persists each
:class:`~repro.refinement.simulation.SimulationCertificate`, as a compact
binary ``.bin`` entry since format 2; older ``.json`` entries remain
readable); the index is built by an incremental scan of the cache
directory over both encodings, and ``GET /v1/certificates/{hash}`` serves
an entry only after **recheck-validating** it —
:func:`repro.refinement.codec.from_bytes` /
:meth:`SimulationCertificate.from_dict` recompute the embedded content
hash, so a tampered or truncated entry is reported missing rather than
served.  Either representation can be served in either wire encoding:
:meth:`ResultStore.certificate` returns the JSON payload,
:meth:`ResultStore.certificate_bytes` the binary container, and each
transcodes on the fly when the stored encoding differs.
"""

from __future__ import annotations

import json
from pathlib import Path

from .._version import __version__ as TOOL_VERSION
from ..exec.cache import NullCache, ResultCache, default_cache_dir
from ..exec.hashing import fingerprint


def job_key(kind: str, params: dict) -> str:
    """The content-addressed store key for one canonical job request."""
    return fingerprint(
        "service-job",
        TOOL_VERSION,
        kind,
        json.dumps(params, sort_keys=True, separators=(",", ":")),
    )


class ResultStore:
    """Deduplicates job results and serves certificates by content hash."""

    def __init__(self, cache_dir: str | Path | None = None, use_cache: bool = True):
        if use_cache:
            self.cache = ResultCache(Path(cache_dir) if cache_dir else default_cache_dir())
        else:
            self.cache = NullCache()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._cert_index: dict[str, str] = {}  # content hash -> cache key
        self._scanned: set[str] = set()

    # -- job results --------------------------------------------------------

    def key_for(self, kind: str, params: dict) -> str:
        return job_key(kind, params)

    def get(self, key: str) -> dict | list | None:
        """A stored wire-format result, or None on miss."""
        payload = self.cache.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict | list) -> None:
        self.cache.put(key, payload)
        self.writes += 1

    # -- certificates -------------------------------------------------------

    def _load_certificate(self, content_hash: str):
        """The re-validated :class:`SimulationCertificate`, or None.

        Served entries are re-validated regardless of stored encoding: the
        entry must rebuild into a certificate whose recomputed content hash
        equals both its embedded hash and the requested one.  Binary
        entries are tried first (the certified fast path stores them since
        format 2), then legacy JSON entries.
        """
        from ..errors import CertificateError
        from ..refinement.codec import from_bytes
        from ..refinement.simulation import SimulationCertificate

        key = self._cert_index.get(content_hash)
        if key is None:
            self.refresh_certificates()
            key = self._cert_index.get(content_hash)
        if key is None:
            return None
        blob = self.cache.get_bytes(key)
        if blob is not None:
            try:
                certificate = from_bytes(blob)
            except CertificateError:
                return None
            if certificate.content_hash() != content_hash:
                return None
            return certificate
        payload = self.cache.get(key)
        if not isinstance(payload, dict):
            return None
        try:
            certificate = SimulationCertificate.from_dict(payload)
        except CertificateError:
            return None
        if certificate.content_hash() != content_hash:
            return None
        return certificate

    def certificate(self, content_hash: str) -> dict | None:
        """The validated certificate for *content_hash* as a JSON payload."""
        certificate = self._load_certificate(content_hash)
        if certificate is None:
            return None
        return certificate.to_dict()

    def certificate_bytes(self, content_hash: str) -> bytes | None:
        """The validated certificate for *content_hash* as a binary container."""
        from ..refinement.codec import to_bytes

        certificate = self._load_certificate(content_hash)
        if certificate is None:
            return None
        return to_bytes(certificate)

    def refresh_certificates(self) -> int:
        """Incrementally scan the cache directory for certificate entries.

        Only files not seen by a previous scan are opened, so a warm store
        with thousands of entries pays for each file once.  Returns the
        number of certificates indexed in total.
        """
        from ..errors import CertificateError
        from ..refinement.codec import content_hash_of

        root = getattr(self.cache, "root", None)
        if root is None:  # NullCache: nothing on disk
            return 0
        for path in Path(root).glob("*/*.bin"):
            name = f"{path.parent.name}/{path.name}"
            if name in self._scanned:
                continue
            self._scanned.add(name)
            try:
                # Validates the container envelope (magic, version,
                # payload integrity) before trusting the embedded digest.
                content_hash = content_hash_of(path.read_bytes())
            except (OSError, CertificateError):
                continue
            self._cert_index[content_hash] = path.stem
        for path in Path(root).glob("*/*.json"):
            name = f"{path.parent.name}/{path.name}"
            if name in self._scanned:
                continue
            self._scanned.add(name)
            try:
                entry = json.loads(path.read_text())
                payload = entry["payload"]
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if (
                isinstance(payload, dict)
                and payload.get("kind") == "SimulationCertificate"
                and isinstance(payload.get("hash"), str)
            ):
                self._cert_index.setdefault(payload["hash"], entry.get("key", path.stem))
        return len(self._cert_index)

    # -- accounting ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "certificates": len(self._cert_index),
        }
