"""High-level refinement checking over graphs and rewrites.

This module turns the low-level simulation machinery into the API the rest
of the library uses:

* :func:`check_refinement` — ``impl ⊑ spec`` for two modules;
* :func:`check_graph_refinement` — the same for two ExprHigh graphs,
  denoted in a given environment (definition 4.5 instantiated on graphs);
* :func:`check_rewrite_obligation` — discharge a rewrite's ``rhs ⊑ lhs``
  obligation on a bounded instance, the executable stand-in for the Lean
  proof that theorem 4.6 then propagates to whole graphs.

Since v1.4 obligation checks are *certified*: a successful search's
:class:`~repro.refinement.simulation.SimulationCertificate` can be stored
in the content-addressed result cache, and a repeated obligation loads the
certificate and re-validates it in one O(relation) pass
(:func:`~repro.refinement.simulation.recheck_certificate`) instead of
re-solving the game.  Re-validation is a *check*, not trust: a stale,
corrupted or tampered certificate fails the hash or a simulation diagram
and the obligation silently falls back to a full search.  The
:class:`RefinementReport` records which path produced it: ``mode="search"``
(cold), ``"recheck"`` (persisted certificate re-validated, via witness
replay or the exhaustive pass), ``"recheck-incremental"`` (only the
rewrite-touched region re-validated; see
:mod:`repro.refinement.incremental`) or ``"search-fallback"`` (a stored
certificate failed re-validation and the game was re-solved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .. import obs
from ..core.environment import Environment
from ..core.exprhigh import ExprHigh
from ..core.module import Module, Value
from ..core.ports import IOPort, Port
from ..core.semantics import denote
from ..errors import CertificateError, RefinementError
from .simulation import (
    SimulationCertificate,
    SimulationResult,
    _normalise_stimuli,
    find_weak_simulation,
    recheck_certificate,
)

Stimuli = Mapping[Port, Iterable[Value]]


@dataclass
class RefinementReport:
    """A successful refinement check with its witness and statistics.

    *mode* records the provenance of the verdict: ``"search"`` when the
    weak-simulation game was solved from scratch (cold), ``"recheck"``
    when a persisted certificate was re-validated (witness replay or the
    exhaustive diagram pass), ``"recheck-incremental"`` when only the
    touched region of a rewritten graph was re-validated against a
    transported baseline certificate, and ``"search-fallback"`` when a
    stored certificate existed but failed re-validation and the game was
    re-solved from scratch — corruption costs time, never soundness.

    On the wire the certificate travels by *content hash*, not by value
    (certificates run to megabytes; the service stores them
    content-addressed and serves them from ``GET /v1/certificates/{hash}``),
    so a report rebuilt by :meth:`from_dict` is *detached*: ``certificate``
    is None and the statistics come from the recorded ``stats`` dict.
    """

    certificate: SimulationCertificate | None
    mode: str = "search"  # "search" | "recheck" | "recheck-incremental" | "search-fallback"
    #: Detached-form statistics (``impl_states``/``spec_states``/
    #: ``relation_size``/``certificate_hash``), populated by
    #: :meth:`from_dict` when the certificate itself did not travel.
    stats: dict | None = None

    @property
    def detached(self) -> bool:
        """True when this report carries only the certificate's hash."""
        return self.certificate is None

    @property
    def impl_states(self) -> int:
        if self.certificate is not None:
            return self.certificate.impl_states
        return int(self.stats["impl_states"])

    @property
    def spec_states(self) -> int:
        if self.certificate is not None:
            return self.certificate.spec_states
        return int(self.stats["spec_states"])

    @property
    def relation_size(self) -> int:
        if self.certificate is not None:
            return len(self.certificate.relation)
        return int(self.stats["relation_size"])

    @property
    def certificate_hash(self) -> str:
        if self.certificate is not None:
            return self.certificate.content_hash()
        return str(self.stats["certificate_hash"])

    # -- result protocol / wire format (repro.results) ------------------------

    def to_dict(self) -> dict:
        from ..results import SCHEMA_VERSION

        return {
            "kind": "RefinementReport",
            "schema_version": SCHEMA_VERSION,
            "holds": True,  # a report only exists for a successful check
            "mode": self.mode,
            "impl_states": int(self.impl_states),
            "spec_states": int(self.spec_states),
            "relation_size": int(self.relation_size),
            "certificate_hash": self.certificate_hash,
        }

    @staticmethod
    def from_dict(data: dict) -> "RefinementReport":
        """Rebuild the detached form; raises ``ResultSchemaError`` on drift."""
        from ..errors import ResultSchemaError
        from ..results import check_schema

        entry = check_schema(data, "RefinementReport")
        try:
            return RefinementReport(
                certificate=None,
                mode=str(entry["mode"]),
                stats={
                    "impl_states": int(entry["impl_states"]),
                    "spec_states": int(entry["spec_states"]),
                    "relation_size": int(entry["relation_size"]),
                    "certificate_hash": str(entry["certificate_hash"]),
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ResultSchemaError(
                f"malformed RefinementReport wire dict: {exc}"
            ) from exc

    def summary(self) -> str:
        return (
            f"refinement holds [{self.mode}] ({self.impl_states} impl states, "
            f"{self.spec_states} spec states)"
        )


def check_refinement(impl: Module, spec: Module, stimuli: Stimuli) -> RefinementReport:
    """Check ``impl ⊑ spec``; raises :class:`RefinementError` on failure."""
    with obs.span("refine:weak-sim") as sp:
        result: SimulationResult = find_weak_simulation(impl, spec, stimuli)
        sp.set(holds=result.holds)
        if result.certificate is not None:
            sp.set(
                impl_states=result.certificate.impl_states,
                spec_states=result.certificate.spec_states,
            )
    obs.count("refinement.weak_sim_checks")
    return RefinementReport(result.raise_on_failure())


def refines(impl: Module, spec: Module, stimuli: Stimuli) -> bool:
    """Boolean form of :func:`check_refinement`."""
    return find_weak_simulation(impl, spec, stimuli).holds


def check_graph_refinement(
    impl: ExprHigh,
    spec: ExprHigh,
    env: Environment,
    stimuli: Stimuli,
) -> RefinementReport:
    """Check ⟦impl⟧ε ⊑ ⟦spec⟧ε for two ExprHigh graphs."""
    impl_module = denote(impl.lower(), env)
    spec_module = denote(spec.lower(), env)
    return check_refinement(impl_module, spec_module, stimuli)


def uniform_stimuli(module: Module, values: Iterable[Value]) -> dict[Port, tuple[Value, ...]]:
    """Offer the same finite value set on every input port of *module*."""
    values = tuple(values)
    return {port: values for port in module.input_ports()}


def io_stimuli(values_per_port: Mapping[int, Iterable[Value]]) -> dict[Port, tuple[Value, ...]]:
    """Build stimuli keyed by I/O port index."""
    return {IOPort(index): tuple(values) for index, values in values_per_port.items()}


def _load_cached_certificate(cache, key: str) -> tuple[SimulationCertificate | None, bool]:
    """Fetch and decode a cached certificate, trying binary first.

    The compact binary entry (``.bin``, written by newer runs) is preferred
    — smaller and ~5x faster to decode — with the JSON entry as the interop
    fallback.  Returns ``(certificate, found)``: *found* is True whenever a
    stored entry existed, even one that failed to decode (format drift,
    hash mismatch, truncation — counted as recheck failures).
    """
    found = False
    blob = cache.get_bytes(key) if hasattr(cache, "get_bytes") else None
    if blob is not None:
        from .codec import from_bytes

        found = True
        try:
            return from_bytes(blob), True
        except CertificateError:
            obs.count("refinement.cert_recheck_failures")
            # fall through to the JSON entry, if any
    entry = cache.get(key)
    if entry is None:
        return None, found
    try:
        return SimulationCertificate.from_dict(entry), True
    except CertificateError:
        obs.count("refinement.cert_recheck_failures")
        return None, True


def _recheck_cached_certificate(
    cache,
    key: str,
    impl: Module,
    spec: Module,
    stimuli: Stimuli,
) -> tuple[RefinementReport | None, bool]:
    """Load and re-validate a cached certificate.

    Returns ``(report, had_candidate)``: *report* is None on any
    miss/failure, and *had_candidate* records whether a stored certificate
    was found at all — a caller that then searches reports
    ``mode="search-fallback"`` so metrics can tell a cold search from a
    failed fast path.

    Never trusts the stored verdict: the certificate is deserialised (hash
    checked), then its relation is re-validated against the freshly
    denoted modules — through the witness replay fast path when the
    certificate carries witnesses, else the exhaustive diagram pass.  Any
    failure — cache miss, format drift, hash mismatch, a diagram that no
    longer holds — reports a miss so the caller runs the full search.
    """
    with obs.span("refine:recheck") as sp:
        certificate, found = _load_cached_certificate(cache, key)
        if certificate is None:
            obs.count("refinement.cert_cache_misses")
            return None, found
        result = recheck_certificate(impl, spec, certificate, stimuli)
        sp.set(
            holds=result.holds,
            relation=len(certificate.relation),
            method=result.method,
        )
        if not result.holds:
            obs.count("refinement.cert_recheck_failures")
            return None, True
    obs.count("refinement.cert_cache_hits")
    if result.method == "replay":
        obs.count("refinement.cert_replay_hits")
    return RefinementReport(certificate, mode="recheck"), True


def check_rewrite_obligation(
    lhs: ExprHigh,
    rhs: ExprHigh,
    env: Environment,
    stimuli: Stimuli | None = None,
    values: Iterable[Value] = (0, 1),
    spec_capacity: int | None = 4,
    cache=None,
    executor=None,
    sharded_ref: dict | None = None,
) -> RefinementReport:
    """Discharge the ``rhs ⊑ lhs`` obligation of a rewrite on a bounded instance.

    The rewriting function is correctness-preserving whenever the right-hand
    side refines the left-hand side (theorem 4.6); this function checks that
    premise.  When *stimuli* is omitted, the value set *values* is offered
    uniformly on every input.

    The rhs (implementation) is denoted in *env*, whose queue capacities
    bound the explored state space; the lhs (specification) is denoted with
    the larger *spec_capacity*, approximating the paper's unbounded-queue
    semantics.  The spec must be roomier than the impl so that extra
    buffering introduced by a rewrite does not register as a spurious
    input-refusal counterexample; it must stay bounded because components
    that discard tokens (Sinks) would otherwise give the simulation game
    unboundedly many partially-drained spec states.

    *cache* (a :class:`repro.exec.cache.ResultCache`-shaped object) enables
    the certificate fast path: a prior successful check's certificate is
    loaded (preferring the compact binary entry) and re-validated — via
    witness replay when witnesses are present, else the exhaustive pass; on
    success the report has ``mode="recheck"``, and on any re-validation
    failure the full search runs (``mode="search-fallback"``) and its fresh
    certificate replaces the stored one.

    When *executor* and *sharded_ref* are both given, a cold search is
    sharded over the executor pool
    (:func:`~repro.refinement.sharded.find_weak_simulation_sharded`);
    verdicts and certificate hashes are identical to the serial search.
    """
    rhs_module = denote(rhs.lower(), env)
    lhs_module = denote(lhs.lower(), env.with_capacity(spec_capacity))
    if stimuli is None:
        stimuli = uniform_stimuli(rhs_module, values)

    key = None
    had_candidate = False
    if cache is not None:
        from ..exec.hashing import certificate_key

        key = certificate_key(rhs, lhs, env, stimuli, spec_capacity=spec_capacity)
        report, had_candidate = _recheck_cached_certificate(
            cache, key, rhs_module, lhs_module, stimuli
        )
        if report is not None:
            return report

    with obs.span("refine:weak-sim", obligation=True, sharded=sharded_ref is not None) as sp:
        if executor is not None and sharded_ref is not None:
            from .sharded import find_weak_simulation_sharded

            result = find_weak_simulation_sharded(
                rhs_module, lhs_module, stimuli, executor=executor, ref=sharded_ref
            )
        else:
            result = find_weak_simulation(rhs_module, lhs_module, stimuli)
        sp.set(holds=result.holds)
        if result.certificate is not None:
            sp.set(
                impl_states=result.certificate.impl_states,
                spec_states=result.certificate.spec_states,
            )
    obs.count("refinement.weak_sim_checks")
    if not result.holds:
        raise RefinementError(
            f"rewrite obligation rhs ⊑ lhs failed: {result.violation}",
            counterexample=result.violation,
        )
    certificate = result.certificate
    assert certificate is not None
    if cache is not None and key is not None:
        _store_certificate(cache, key, certificate)
    return RefinementReport(
        certificate, mode="search-fallback" if had_candidate else "search"
    )


def _store_certificate(cache, key: str, certificate: SimulationCertificate) -> None:
    """Persist a fresh certificate, preferring the compact binary entry."""
    if hasattr(cache, "put_bytes"):
        from .codec import to_bytes

        cache.put_bytes(key, to_bytes(certificate))
    else:
        cache.put(key, certificate.to_dict())


def recheck_obligation_certificate(
    lhs: ExprHigh,
    rhs: ExprHigh,
    env: Environment,
    certificate: SimulationCertificate,
    stimuli: Stimuli | None = None,
    spec_capacity: int | None = 4,
) -> RefinementReport:
    """Re-validate a persisted certificate against a freshly denoted obligation.

    The file-based counterpart of the cache fast path (``repro refine
    --load-certs``): both graphs are denoted exactly as
    :func:`check_rewrite_obligation` would denote them, and the
    certificate's relation is replayed diagram by diagram.  Raises
    :class:`RefinementError` if the certificate no longer constitutes
    evidence — because it was tampered with, or because the rewrite's
    obligation drifted since the certificate was minted.
    """
    rhs_module = denote(rhs.lower(), env)
    lhs_module = denote(lhs.lower(), env.with_capacity(spec_capacity))
    if stimuli is None:
        stimuli = uniform_stimuli(rhs_module, (0, 1))
    with obs.span("refine:recheck", obligation=True) as sp:
        result = recheck_certificate(rhs_module, lhs_module, certificate, stimuli)
        sp.set(holds=result.holds, relation=len(certificate.relation))
    if not result.holds:
        obs.count("refinement.cert_recheck_failures")
        raise RefinementError(
            f"certificate re-validation failed: {result.violation}",
            counterexample=result.violation,
        )
    obs.count("refinement.cert_cache_hits")
    return RefinementReport(certificate, mode="recheck")


def recheck_obligation_incremental(
    lhs: ExprHigh,
    rhs_old: ExprHigh,
    rhs_new: ExprHigh,
    env: Environment,
    certificate: SimulationCertificate,
    stimuli: Stimuli | None = None,
    values: Iterable[Value] = (0, 1),
    spec_capacity: int | None = 4,
    cache=None,
) -> RefinementReport:
    """Discharge ``rhs_new ⊑ lhs`` by upgrading evidence for ``rhs_old ⊑ lhs``.

    *certificate* must be valid evidence for the old obligation (typically
    the report of a prior :func:`check_rewrite_obligation` on *rhs_old*).
    The incremental pass transports the relation onto the new graph's
    state shape and re-validates only the moves of the touched region
    (:mod:`repro.refinement.incremental`); the fallback chain is

    1. incremental recheck  → ``mode="recheck-incremental"``
    2. full recheck of the baseline certificate (when the incremental
       argument does not apply but the state shape is unchanged)
       → ``mode="recheck"``
    3. full search → ``mode="search-fallback"``

    so a stale or corrupted baseline costs time, never soundness.  The
    upgraded certificate is stored under the *new* obligation's cache key
    when *cache* is given.
    """
    from .incremental import incremental_recheck

    rhs_module = denote(rhs_new.lower(), env)
    lhs_module = denote(lhs.lower(), env.with_capacity(spec_capacity))
    if stimuli is None:
        stimuli = uniform_stimuli(rhs_module, values)
    try:
        wanted = _normalise_stimuli(rhs_module, stimuli)
    except RefinementError:
        wanted = None

    if wanted is not None and wanted == certificate.stimuli:
        with obs.span("refine:recheck-incremental", obligation=True) as sp:
            outcome = incremental_recheck(
                rhs_old, rhs_new, env, rhs_module, lhs_module, certificate, wanted
            )
            sp.set(
                eligible=outcome.eligible,
                entries=outcome.entries_validated,
                moves=outcome.moves_checked,
                reason=outcome.reason,
            )
        if (
            outcome.eligible
            and outcome.result is not None
            and outcome.result.holds
            and outcome.result.certificate is not None
        ):
            obs.count("refinement.incremental_hits")
            upgraded = outcome.result.certificate
            if cache is not None:
                from ..exec.hashing import certificate_key

                key = certificate_key(
                    rhs_new, lhs, env, stimuli, spec_capacity=spec_capacity
                )
                _store_certificate(cache, key, upgraded)
            return RefinementReport(upgraded, mode="recheck-incremental")
        if not outcome.eligible:
            # The incremental argument did not apply; the baseline may
            # still recheck in full when the state shape is unchanged.
            result = recheck_certificate(rhs_module, lhs_module, certificate, stimuli)
            if result.holds:
                obs.count("refinement.cert_cache_hits")
                return RefinementReport(certificate, mode="recheck")
    obs.count("refinement.incremental_fallbacks")
    return_report = check_rewrite_obligation(
        lhs,
        rhs_new,
        env,
        stimuli,
        values=values,
        spec_capacity=spec_capacity,
        cache=cache,
    )
    if return_report.mode == "search":
        return_report.mode = "search-fallback"
    return return_report


def check_rewrite_obligation_traces(
    lhs: ExprHigh,
    rhs: ExprHigh,
    env: Environment,
    stimuli: Stimuli,
    depth: int = 4,
    spec_capacity: int | None = 4,
) -> None:
    """Cross-validate an obligation through the trace semantics.

    Refinement implies trace inclusion (section 4.4), so every rhs trace of
    bounded length must be an lhs trace.  This is an independent check of
    the simulation game — slower (trace enumeration is exponential in
    *depth*) but conceptually simpler, which is exactly what makes it a
    good oracle for the checker itself.
    """
    from .traces import trace_inclusion

    rhs_module = denote(rhs.lower(), env)
    lhs_module = denote(lhs.lower(), env.with_capacity(spec_capacity))
    witness = trace_inclusion(rhs_module, lhs_module, stimuli, depth)
    if witness is not None:
        raise RefinementError(
            f"rhs trace not reproducible by lhs: {witness}", counterexample=witness
        )
