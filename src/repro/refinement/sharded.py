"""Sharded weak-simulation search over the executor pool.

The game search of :func:`~repro.refinement.simulation.find_weak_simulation`
has two phases: *forward exploration* (fire every reachable position's
implementation moves and collect the spec's permitted responses — the
expensive part, dominated by spec τ-closure walks) and *game resolution*
(backward loss propagation — cheap).  This module parallelises the first
phase level-synchronously:

1. the parent owns the position table (hash-consed states, dense int ids,
   packed ``(impl, spec)`` position keys — the same interning the serial
   search uses);
2. each BFS level's unexpanded positions are partitioned into contiguous
   shards and fanned out over the PR-1 executor pool; workers rebuild the
   obligation's modules from a picklable recipe (*ref*) once per process
   (memoised, with their own :class:`~.simulation._GameCache`, so spec
   response sets amortise across levels) and return plain state-level move
   tables;
3. the parent merges results **in submission order** — interning new
   states and positions deterministically — then expands the next level.

Small levels (below *min_frontier*) expand locally: shipping two modules'
worth of states to a pool costs more than firing a handful of positions.

The merged arena is resolved by the same
:func:`~.simulation.resolve_game`, so verdicts, certificates and content
hashes are identical to the serial search — the relation is a set and the
canonical encoding sorts it, so even merge-order differences cannot leak
into the hash.  Witness choices may legitimately differ between serial
and sharded runs (first-found winning responses depend on worker
iteration order); witnesses are advisory and excluded from the hash.
Refutations re-run serially so the reported counterexample is also
byte-identical to a serial run's.
"""

from __future__ import annotations

from .. import obs
from ..core.module import Module, Value
from ..errors import SemanticsError
from .simulation import (
    SimulationResult,
    Stimuli,
    _GameCache,
    _interface_violation,
    _Move,
    _normalise_stimuli,
    expand_position,
    resolve_game,
)

#: Below this many unexpanded positions in a level, expand locally.
MIN_FRONTIER = 64

_KINDS = ("input", "output", "internal")


def _move_detail(kind: int, port, value) -> str:
    if kind == 0:
        return f"input {port}={value!r}"
    if kind == 1:
        return f"output {port} emits {value!r}"
    return "internal step"


def find_weak_simulation_sharded(
    impl: Module,
    spec: Module,
    stimuli: Stimuli,
    *,
    executor,
    ref: dict | None,
    limit: int = 500_000,
    min_frontier: int = MIN_FRONTIER,
    mint_witnesses: bool = True,
) -> SimulationResult:
    """Decide ``impl ⊑ spec`` with frontier expansion sharded over *executor*.

    *ref* is the picklable recipe workers use to rebuild the obligation's
    modules (see :func:`repro.exec.workers.expand_simulation_frontier`);
    when it is None, or *executor* has one job, every level expands locally
    and this degrades gracefully to the serial search.
    """
    interface = _interface_violation(impl, spec)
    if interface is not None:
        return SimulationResult(False, violation=interface)
    stimuli = _normalise_stimuli(impl, stimuli)
    succ = _GameCache(impl, spec, stimuli)

    index_of: dict[int, int] = {}
    pairs: list[tuple[int, int]] = []
    moves: list[list[_Move] | None] = []

    def intern(sid: int, tid: int) -> int:
        key = (sid << 32) | tid
        idx = index_of.get(key)
        if idx is None:
            idx = len(pairs)
            if idx >= limit:
                raise SemanticsError(
                    f"simulation game exceeded the limit of {limit} positions"
                )
            index_of[key] = idx
            pairs.append((sid, tid))
            moves.append(None)
        return idx

    frontier = [
        intern(succ.impl_id(s0), succ.spec_id(t0))
        for s0 in impl.init
        for t0 in spec.init
    ]
    can_shard = (
        executor is not None and ref is not None and getattr(executor, "jobs", 1) > 1
    )
    levels = 0
    sharded_levels = 0

    while frontier:
        todo: list[int] = []
        seen_round: set[int] = set()
        for idx in frontier:
            if moves[idx] is None and idx not in seen_round:
                seen_round.add(idx)
                todo.append(idx)
        frontier = []
        if not todo:
            break
        levels += 1

        if not can_shard or len(todo) < min_frontier:
            for idx in todo:
                sid, tid = pairs[idx]
                moves[idx] = expand_position(succ, sid, tid, intern)
        else:
            sharded_levels += 1
            _expand_level_sharded(succ, executor, ref, todo, pairs, moves, intern)

        for idx in todo:
            for move in moves[idx] or ():
                for succ_idx in move.responses:
                    if moves[succ_idx] is None:
                        frontier.append(succ_idx)

    obs.count("refinement.sharded_levels", sharded_levels)
    with obs.span(
        "refine:sharded-resolve", positions=len(pairs), levels=levels,
        sharded_levels=sharded_levels,
    ):
        result = resolve_game(succ, pairs, moves, index_of, mint_witnesses=mint_witnesses)
    if not result.holds and sharded_levels:
        # Diagnosis reports the *first* failing move, and "first" depends on
        # position interning order, which sharded merging perturbs.  Refuted
        # obligations are the rare case, so re-derive the counterexample
        # serially — output stays byte-identical to a serial run.
        from .simulation import find_weak_simulation

        return find_weak_simulation(
            impl, spec, stimuli, limit=limit, mint_witnesses=mint_witnesses
        )
    return result


def _expand_level_sharded(
    succ: _GameCache,
    executor,
    ref: dict,
    todo: list[int],
    pairs: list[tuple[int, int]],
    moves: list,
    intern,
) -> None:
    """Fan one BFS level out over the pool and merge deterministically."""
    from ..exec.executor import WorkUnit

    shards = max(1, int(getattr(executor, "jobs", 1)))
    chunk = (len(todo) + shards - 1) // shards
    chunks = [todo[k : k + chunk] for k in range(0, len(todo), chunk)]
    units = []
    for k, indices in enumerate(chunks):
        payload_pairs = [
            (succ.impl_states[sid], succ.spec_states[tid])
            for sid, tid in (pairs[idx] for idx in indices)
        ]
        units.append(
            WorkUnit(
                uid=f"sim-shard-{len(pairs)}-{k}",
                fn="repro.exec.workers:expand_simulation_frontier",
                payload={"ref": ref, "pairs": payload_pairs},
            )
        )
    results = executor.run(units)
    impl_id, spec_id = succ.impl_id, succ.spec_id
    for indices, shard_result in zip(chunks, results):
        if shard_result is None or len(shard_result) != len(indices):
            # A worker shard went missing: expand those positions locally —
            # the pool is an optimisation, never a correctness dependency.
            for idx in indices:
                if moves[idx] is None:
                    sid, tid = pairs[idx]
                    moves[idx] = expand_position(succ, sid, tid, intern)
            continue
        for idx, move_rows in zip(indices, shard_result):
            position_moves = []
            for kind, port, value, succ_state, responses in move_rows:
                s_next = impl_id(succ_state)
                interned = tuple(intern(s_next, spec_id(t)) for t in responses)
                position_moves.append(
                    _Move(
                        _KINDS[kind],
                        _move_detail(kind, port, value),
                        interned,
                        port=port,
                        value=value,
                        succ_sid=s_next,
                    )
                )
            moves[idx] = position_moves


def obligation_ref(
    module: str,
    factory: str,
    kwargs: dict | None,
    instance: int,
    *,
    values: tuple[Value, ...] = (0, 1),
    spec_capacity: int | None = 4,
) -> dict:
    """The picklable recipe for one obligation instance of a rewrite factory.

    Workers re-import ``module:factory``, rebuild the rewrite, take
    obligation instance *instance* and denote both sides exactly as
    :func:`~repro.refinement.checker.check_rewrite_obligation` does.
    """
    return {
        "module": module,
        "factory": factory,
        "kwargs": dict(kwargs or {}),
        "instance": int(instance),
        "values": list(values),
        "spec_capacity": spec_capacity,
    }
