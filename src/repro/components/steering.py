"""Steering components: Mux, Branch, Merge, Init (Table 1 of the paper).

Conventions (matching the paper's figures):

* a **Mux** takes a condition and two data inputs, emitting the *left*
  (index 0) input when the condition is true and the *right* (index 1) when
  false;
* a **Branch** takes a condition and one data input, emitting on output 0
  when the condition is true and on output 1 when false;
* a **Merge** passes whichever input has a token first — the one genuinely
  nondeterministic steering component, which is what makes out-of-order
  execution expressible;
* an **Init** behaves like a queue pre-loaded with a single boolean token
  (false by default), used to bootstrap a loop's Mux condition.

The ``tagged=true`` parameter makes a Branch read its boolean out of a
(tag, bool) pair, as needed inside a Tagger/Untagger region.
"""

from __future__ import annotations

from typing import Iterator

from ..core.environment import Environment
from ..core.module import Module, State, Value, deq, enq, first, io_module
from ..core.ports import IOPort
from ..core.types import BOOL, I32, Type


def _data_type(params: dict) -> Type:
    typ = params.get("type")
    return typ if isinstance(typ, Type) else I32


def _enq_at(state: State, index: int, value: Value, cap: int | None) -> Iterator[State]:
    queues = list(state)  # type: ignore[arg-type]
    nxt = enq(queues[index], value, cap)
    if nxt is None:
        return
    queues[index] = nxt
    yield tuple(queues)


def build_mux(params: dict, env: Environment) -> Module:
    """Mux: condition selects which input queue supplies the output."""
    cap = env.capacity
    typ = _data_type(params)

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        cond_q, true_q, false_q = state  # type: ignore[misc]
        cond = first(cond_q)
        if cond is None:
            return
        data_q = true_q if cond else false_q
        popped = deq(data_q)
        if popped is None:
            return
        value, rest = popped
        new_cond = deq(cond_q)[1]  # type: ignore[index]
        if cond:
            yield value, (new_cond, rest, false_q)
        else:
            yield value, (new_cond, true_q, rest)

    return io_module(
        inputs={
            IOPort(0): (BOOL, lambda s, v: _enq_at(s, 0, v, cap)),
            IOPort(1): (typ, lambda s, v: _enq_at(s, 1, v, cap)),
            IOPort(2): (typ, lambda s, v: _enq_at(s, 2, v, cap)),
        },
        outputs={IOPort(0): (typ, out0)},
        init=[((), (), ())],
    )


def build_branch(params: dict, env: Environment) -> Module:
    """Branch: condition steers the data input to output 0 (true) or 1."""
    cap = env.capacity
    typ = _data_type(params)
    tagged = bool(params.get("tagged", False))

    def truth(cond: Value) -> bool:
        if tagged:
            return bool(cond[1])  # type: ignore[index]
        return bool(cond)

    def make_out(wanted: bool):
        def out(state: State) -> Iterator[tuple[Value, State]]:
            cond_q, data_q = state  # type: ignore[misc]
            cond = first(cond_q)
            if cond is None or truth(cond) != wanted:
                return
            popped = deq(data_q)
            if popped is None:
                return
            value, rest = popped
            yield value, (deq(cond_q)[1], rest)  # type: ignore[index]

        return out

    cond_type = _data_type({"type": params.get("cond_type")}) if tagged else BOOL
    return io_module(
        inputs={
            IOPort(0): (cond_type, lambda s, v: _enq_at(s, 0, v, cap)),
            IOPort(1): (typ, lambda s, v: _enq_at(s, 1, v, cap)),
        },
        outputs={IOPort(0): (typ, make_out(True)), IOPort(1): (typ, make_out(False))},
        init=[((), ())],
    )


def build_merge(params: dict, env: Environment) -> Module:
    """Merge: emits the first available token from either input.

    Both dequeues are offered as successor states, which is precisely the
    local nondeterminism that Kahn-style semantics cannot express (section 7
    of the paper) and that the refinement framework is built to handle.
    """
    cap = env.capacity
    typ = _data_type(params)

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        left_q, right_q = state  # type: ignore[misc]
        left = deq(left_q)
        if left is not None:
            yield left[0], (left[1], right_q)
        right = deq(right_q)
        if right is not None:
            yield right[0], (left_q, right[1])

    return io_module(
        inputs={
            IOPort(0): (typ, lambda s, v: _enq_at(s, 0, v, cap)),
            IOPort(1): (typ, lambda s, v: _enq_at(s, 1, v, cap)),
        },
        outputs={IOPort(0): (typ, out0)},
        init=[((), ())],
    )


def build_cmerge(params: dict, env: Environment) -> Module:
    """Control Merge: like Merge, but also emits which side won.

    Dynamatic uses CMerge to reconstruct control flow after joins; the
    index output feeds a Mux selecting the matching data path.  Output 0
    carries the token, output 1 carries True for the left input.
    """
    cap = env.capacity
    typ = _data_type(params)

    def in_side(index: int):
        def fire(state: State, value: Value) -> Iterator[State]:
            yield from _enq_at(state, index, value, cap)

        return fire

    def make_out(which: int):
        def out(state: State) -> Iterator[tuple[Value, State]]:
            left_q, right_q, pending = state  # type: ignore[misc]
            if which == 0:
                left = deq(left_q)
                if left is not None and pending is None:
                    yield left[0], (left[1], right_q, True)
                right = deq(right_q)
                if right is not None and pending is None:
                    yield right[0], (left_q, right[1], False)
            else:
                if pending is not None:
                    yield pending, (left_q, right_q, None)

        return out

    return io_module(
        inputs={
            IOPort(0): (typ, in_side(0)),
            IOPort(1): (typ, in_side(1)),
        },
        outputs={IOPort(0): (typ, make_out(0)), IOPort(1): (BOOL, make_out(1))},
        init=[((), (), None)],
    )


def build_init(params: dict, env: Environment) -> Module:
    """Init: a queue holding one pre-loaded boolean token."""
    cap = env.capacity
    initial = bool(params.get("value", False))

    def in0(state: State, value: Value) -> Iterator[State]:
        (queue,) = state  # type: ignore[misc]
        nxt = enq(queue, bool(value), cap)
        if nxt is not None:
            yield (nxt,)

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        (queue,) = state  # type: ignore[misc]
        popped = deq(queue)
        if popped is not None:
            yield popped[0], (popped[1],)

    return io_module(
        inputs={IOPort(0): (BOOL, in0)},
        outputs={IOPort(0): (BOOL, out0)},
        init=[((initial,),)],
    )
