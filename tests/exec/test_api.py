"""Session facade: equivalence, caching, loop marks, the result protocol."""

import numpy as np
import pytest

from repro.api import Session
from repro.benchmarks import matvec
from repro.components import default_environment, fork, mux
from repro.core import ExprHigh
from repro.errors import GraphitiError
from repro.eval.runner import FLOWS, FlowResult, run_benchmark, run_flow
from repro.hls.frontend import LoopMark, compile_program
from repro.hls.ir import BinOp, DoWhile, Kernel, Load, OuterLoop, Program, StoreOp, UnOp, Var
from repro.results import as_dict, summarize
from repro.rewriting.rules.combine import mux_combine


def gcd_program() -> Program:
    loop = DoWhile(
        "gcd",
        ("a", "b"),
        {"a": Var("b"), "b": BinOp("mod", Var("a"), Var("b"))},
        UnOp("ne0", Var("b")),
        ("a",),
    )
    kernel = Kernel(
        "gcd",
        loop,
        (OuterLoop("i", 2),),
        {"a": Load("x", Var("i")), "b": Load("y", Var("i"))},
        (StoreOp("out", Var("i"), Var("a")),),
        tags=2,
    )
    return Program(
        "gcd",
        {"x": np.array([12, 9]), "y": np.array([8, 6]), "out": np.zeros(2)},
        [kernel],
    )


class TestFlowEquivalence:
    def test_run_flow_matches_run_benchmark_on_full_matrix(self):
        combined = run_benchmark("matvec", matvec(5))
        for flow in FLOWS:
            single = run_flow("matvec", flow, matvec(5))
            assert single.to_dict() == combined[flow].to_dict()

    def test_parallel_report_is_byte_identical_to_serial(self, tmp_path):
        programs = {"matvec": matvec(5), "gsum-single": None}
        from repro.benchmarks import gsum_single

        programs["gsum-single"] = gsum_single(40)
        names = ["matvec", "gsum-single"]
        serial = Session(jobs=1, use_cache=False).report(names, programs)
        parallel = Session(jobs=2, use_cache=False).report(names, programs)
        assert parallel == serial


class TestSessionCaching:
    def test_warm_rerun_recomputes_nothing_and_matches(self, tmp_path):
        programs = {"matvec": matvec(5)}
        cold = Session(jobs=1, cache_dir=tmp_path)
        first = cold.report(["matvec"], programs)
        assert cold.metrics().executed == len(FLOWS)

        warm = Session(jobs=1, cache_dir=tmp_path)
        second = warm.report(["matvec"], {"matvec": matvec(5)})
        assert second == first
        assert warm.metrics().executed == 0
        assert warm.metrics().hits == len(FLOWS)

    def test_program_edit_invalidates_cache(self, tmp_path):
        Session(cache_dir=tmp_path).bench("matvec", program=matvec(5))
        edited = matvec(5)
        edited.arrays["x"][0] += 1.0
        session = Session(cache_dir=tmp_path)
        session.bench("matvec", program=edited)
        assert session.metrics().executed == len(FLOWS)

    def test_verify_is_cached(self, tmp_path):
        specs = [("repro.rewriting.rules.combine", "mux_combine", {})]
        cold = Session(cache_dir=tmp_path)
        first = cold.verify(specs)
        assert cold.metrics().executed == 1 and first[0]["holds"]

        warm = Session(cache_dir=tmp_path)
        second = warm.verify(specs)
        assert warm.metrics().executed == 0 and warm.metrics().hits == 1
        assert second == first

    def test_check_refinements_fans_out_and_caches(self, tmp_path):
        graph = ExprHigh()
        graph.add_node("f", fork(1))
        graph.mark_input(0, "f", "in0")
        graph.mark_output(0, "f", "out0")
        env = default_environment(capacity=1)
        session = Session(env, cache_dir=tmp_path)
        [outcome] = session.check_refinements([(graph, graph.copy())])
        assert outcome["holds"]
        warm = Session(default_environment(capacity=1), cache_dir=tmp_path)
        [again] = warm.check_refinements([(graph, graph.copy())])
        assert warm.metrics().executed == 0 and again == outcome


class TestSessionTransform:
    def test_transform_kernel_via_session(self):
        program = gcd_program()
        compiled = compile_program(program, default_environment())
        ck = compiled.kernels[0]
        session = Session(use_cache=False)
        result = session.transform(ck.graph, ck.mark)
        assert result.transformed
        assert "Tagger" in {spec.typ for spec in result.graph.nodes.values()}


class TestLoopMarkFromGraph:
    def make(self):
        program = gcd_program()
        compiled = compile_program(program, default_environment())
        return compiled.kernels[0]

    def test_valid_mark_matches_frontend_mark(self):
        ck = self.make()
        mark = LoopMark.from_graph(
            ck.graph,
            kernel=ck.mark.kernel,
            mux_nodes=ck.mark.mux_nodes,
            branch_nodes=ck.mark.branch_nodes,
            init_node=ck.mark.init_node,
            cond_fork=ck.mark.cond_fork,
            driver=ck.mark.driver,
            collector=ck.mark.collector,
            tags=ck.mark.tags,
            effectful=ck.mark.effectful,
            sequential_outer=ck.mark.sequential_outer,
        )
        assert mark == ck.mark

    def test_unknown_node_raises_graphiti_error(self):
        ck = self.make()
        with pytest.raises(GraphitiError, match="nonexistent"):
            LoopMark.from_graph(
                ck.graph,
                mux_nodes=["nonexistent"],
                branch_nodes=ck.mark.branch_nodes,
                init_node=ck.mark.init_node,
                cond_fork=ck.mark.cond_fork,
            )

    def test_wrong_component_type_raises(self):
        ck = self.make()
        with pytest.raises(GraphitiError, match="expected 'Init'"):
            LoopMark.from_graph(
                ck.graph,
                mux_nodes=ck.mark.mux_nodes,
                branch_nodes=ck.mark.branch_nodes,
                init_node=ck.mark.cond_fork,  # a Fork, not an Init
                cond_fork=ck.mark.cond_fork,
            )

    def test_empty_mux_list_and_bad_tags_raise(self):
        ck = self.make()
        with pytest.raises(GraphitiError):
            LoopMark.from_graph(
                ck.graph,
                mux_nodes=[],
                branch_nodes=ck.mark.branch_nodes,
                init_node=ck.mark.init_node,
                cond_fork=ck.mark.cond_fork,
            )
        with pytest.raises(GraphitiError, match="tag budget"):
            LoopMark.from_graph(
                ck.graph,
                mux_nodes=ck.mark.mux_nodes,
                branch_nodes=ck.mark.branch_nodes,
                init_node=ck.mark.init_node,
                cond_fork=ck.mark.cond_fork,
                tags=0,
            )

    def test_effectful_derived_from_graph(self):
        ck = self.make()  # gcd stores only in the collector epilogue
        mark = LoopMark.from_graph(
            ck.graph,
            mux_nodes=ck.mark.mux_nodes,
            branch_nodes=ck.mark.branch_nodes,
            init_node=ck.mark.init_node,
            cond_fork=ck.mark.cond_fork,
        )
        assert mark.effectful == any(
            spec.typ == "Store" for spec in ck.graph.nodes.values()
        )


class TestResultProtocol:
    def test_flow_result_roundtrip(self):
        result = run_flow("matvec", "Vericert", matvec(4))
        data = as_dict(result)
        assert data["kind"] == "FlowResult"
        assert FlowResult.from_dict(data).to_dict() == data
        assert "Vericert" in summarize(result)

    def test_transform_result_protocol(self):
        program = gcd_program()
        ck = compile_program(program, default_environment()).kernels[0]
        result = Session(use_cache=False).transform(ck.graph, ck.mark)
        data = as_dict(result)
        assert data["kind"] == "TransformResult" and data["transformed"]
        assert "rewrites" in summarize(result)

    def test_refinement_report_protocol(self):
        from repro.refinement.checker import check_rewrite_obligation

        lhs, rhs, env, stimuli = next(mux_combine().obligation())
        report = check_rewrite_obligation(lhs, rhs, env, stimuli)
        data = as_dict(report)
        assert data["kind"] == "RefinementReport" and data["holds"]
        assert data["mode"] == "search"
        assert data["certificate_hash"] == report.certificate.content_hash()
        assert data["relation_size"] == len(report.certificate.relation)
        assert "refinement holds [search]" in summarize(report)

    def test_benchmark_result_protocol(self):
        result = Session(use_cache=False).bench("matvec", program=matvec(4))
        data = as_dict(result)
        assert data["kind"] == "BenchmarkResult"
        assert set(data["flows"]) == set(FLOWS)

    def test_non_result_rejected(self):
        with pytest.raises(GraphitiError):
            summarize(object())


class TestUnifiedMetrics:
    def test_snapshot_sections_and_protocol(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.bench("matvec", program=matvec(4))
        snapshot = session.metrics()
        data = as_dict(snapshot)
        assert data["kind"] == "MetricsSnapshot"
        assert set(data) >= {"kind", "executor", "rewriting", "counters", "gauges"}
        assert snapshot.units == len(FLOWS)
        assert "units" in summarize(snapshot)

    def test_transform_counts_roll_into_snapshot(self):
        program = gcd_program()
        ck = compile_program(program, default_environment()).kernels[0]
        session = Session(use_cache=False)
        result = session.transform(ck.graph, ck.mark)
        snapshot = session.metrics()
        assert snapshot.rewrites_applied == result.rewrites_applied
        assert snapshot.per_rewrite  # per-rewrite breakdown is populated
        assert sum(r["applied"] for r in snapshot.per_rewrite.values()) == (
            snapshot.rewrites_applied
        )

    def test_attribute_facade_removed(self):
        """The pre-v1.3 attribute forms are gone: metrics is a plain method."""
        session = Session(use_cache=False)
        method = Session.__dict__["metrics"]
        assert not isinstance(method, property)
        with pytest.raises(AttributeError):
            session.metrics.executed  # bound method has no stats attributes
        assert session.metrics().executed == 0


class TestRemovedShims:
    def test_top_level_run_benchmark_removed(self):
        import repro

        assert not hasattr(repro, "run_benchmark")
        assert "run_benchmark" not in repro.__all__


class TestSessionSimulate:
    def make(self):
        # compile_program registers the benchmark's array accessors in the
        # environment, so the session must share it.
        env = default_environment()
        program = matvec(4)
        compiled = compile_program(program, env)
        return program, compiled.kernels[0], Session(env, use_cache=False)

    def test_single_stimulus_returns_stats(self):
        program, ck, session = self.make()
        stats = session.simulate(ck, stimuli=program.arrays)
        assert stats.cycles > 0
        assert stats.results_collected == 4
        assert stats.channel_peaks  # populated on success

    def test_batch_identical_across_backends(self):
        program, ck, session = self.make()

        def fresh():
            return {k: v.copy() for k, v in program.arrays.items()}

        compiled_runs = session.simulate(
            ck, stimuli=[fresh(), fresh()], backend="compiled"
        )
        interp_runs = session.simulate(
            ck, stimuli=[fresh(), fresh()], backend="interp"
        )
        assert [s.cycles for s in compiled_runs] == [s.cycles for s in interp_runs]
        assert [s.channel_peaks for s in compiled_runs] == [
            s.channel_peaks for s in interp_runs
        ]

    def test_bare_graph_requires_kernel(self):
        program, ck, session = self.make()
        with pytest.raises(ValueError, match="kernel"):
            session.simulate(ck.graph, stimuli=program.arrays)
        stats = session.simulate(
            ck.graph, kernel=ck.kernel, stimuli=program.arrays
        )
        assert stats.cycles > 0

    def test_unknown_backend_rejected(self):
        program, ck, session = self.make()
        with pytest.raises(ValueError, match="unknown simulation backend"):
            session.simulate(ck, stimuli=program.arrays, backend="bogus")
