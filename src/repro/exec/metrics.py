"""Per-unit timing and accounting for the executor.

Every work unit the executor touches leaves one :class:`UnitMetric` —
whether it was served from cache, computed in a pool worker, computed
serially, or retried after a worker failure.  The aggregate
:class:`ExecutorMetrics` is what tests assert on (e.g. "a warm rerun
performs zero recomputation" is ``metrics.executed == 0``).

Recording is thread-safe: pool-completion handling can land on a different
thread than the parent's serial path (``concurrent.futures`` invokes done
callbacks on worker-management threads), so :meth:`ExecutorMetrics.record`
takes a lock and the aggregates read a consistent snapshot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class UnitMetric:
    """One unit's outcome: where it ran and how long it took."""

    uid: str
    seconds: float
    cached: bool
    mode: str = "serial"  # "cache" | "serial" | "pool"
    retried: bool = False


@dataclass
class ExecutorMetrics:
    units: list[UnitMetric] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, metric: UnitMetric) -> None:
        with self._lock:
            self.units.append(metric)

    def snapshot(self) -> list[UnitMetric]:
        """A consistent copy of the recorded units."""
        with self._lock:
            return list(self.units)

    # -- aggregates ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(1 for unit in self.snapshot() if unit.cached)

    @property
    def executed(self) -> int:
        """Units actually recomputed (anything not served from cache)."""
        return sum(1 for unit in self.snapshot() if not unit.cached)

    @property
    def retries(self) -> int:
        return sum(1 for unit in self.snapshot() if unit.retried)

    @property
    def total_seconds(self) -> float:
        return sum(unit.seconds for unit in self.snapshot())

    def to_dict(self) -> dict:
        units = self.snapshot()
        return {
            "units": len(units),
            "hits": sum(1 for unit in units if unit.cached),
            "executed": sum(1 for unit in units if not unit.cached),
            "retries": sum(1 for unit in units if unit.retried),
            "total_seconds": sum(unit.seconds for unit in units),
        }

    def summary(self) -> str:
        data = self.to_dict()
        return (
            f"{data['units']} units: {data['hits']} cached, {data['executed']} executed"
            f" ({data['retries']} retried), {data['total_seconds']:.2f}s work"
        )
