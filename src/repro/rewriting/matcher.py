"""Subgraph matching: locating a rewrite's left-hand side in a host graph.

The matcher finds injective mappings from pattern nodes to host nodes such
that

* component types and port lists agree,
* concrete pattern parameters agree and :class:`Var` metavariables bind
  consistently,
* every pattern-internal connection exists identically in the host,
* every pattern boundary port (marked external input/output) corresponds to
  a host port *not* fed from or feeding into the matched region — the
  crossing edges the rewrite will re-attach.

Patterns are *closed*: every pattern node port is either connected inside
the pattern or marked as interface I/O, so a successful match guarantees the
matched host region touches the rest of the graph only through the
interface.  That is what makes removal and replacement sound.
"""

from __future__ import annotations

from typing import Iterator

from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec
from ..errors import MatchError
from .rewrite import Match, Rewrite, Var


def find_matches(graph: ExprHigh, rewrite: Rewrite) -> Iterator[Match]:
    """Yield every match of *rewrite*'s lhs in *graph*, deterministically."""
    pattern = rewrite.lhs
    pattern.validate()  # closed-pattern requirement
    pattern_nodes = _matching_order(pattern)
    if not pattern_nodes:
        raise MatchError(f"rewrite {rewrite.name!r} has an empty pattern")
    yield from _extend(graph, pattern, pattern_nodes, 0, {}, {})


def first_match(graph: ExprHigh, rewrite: Rewrite) -> Match | None:
    """The first match in deterministic order, or None."""
    return next(find_matches(graph, rewrite), None)


def _matching_order(pattern: ExprHigh) -> list[str]:
    """Order pattern nodes so each (after the first) touches a prior node.

    Keeps the backtracking search anchored: candidates for later nodes are
    constrained by connections to already-matched nodes.
    """
    names = sorted(pattern.nodes)
    if not names:
        return []
    order = [names[0]]
    placed = {names[0]}
    remaining = [n for n in names if n not in placed]
    while remaining:
        progressed = False
        for name in list(remaining):
            if any(
                (src.node in placed) != (dst.node in placed)
                and name in (src.node, dst.node)
                for dst, src in pattern.connections.items()
            ):
                order.append(name)
                placed.add(name)
                remaining.remove(name)
                progressed = True
        if not progressed:  # disconnected pattern: anchor a fresh component
            order.append(remaining[0])
            placed.add(remaining[0])
            remaining.pop(0)
    return order


def _extend(
    graph: ExprHigh,
    pattern: ExprHigh,
    order: list[str],
    depth: int,
    node_map: dict[str, str],
    params: dict[str, object],
) -> Iterator[Match]:
    if depth == len(order):
        match = _finalize(graph, pattern, node_map, params)
        if match is not None:
            yield match
        return
    pattern_name = order[depth]
    pattern_spec = pattern.nodes[pattern_name]
    for host_name in sorted(graph.nodes):
        if host_name in node_map.values():
            continue
        bound = _spec_matches(pattern_spec, graph.nodes[host_name], params)
        if bound is None:
            continue
        node_map[pattern_name] = host_name
        if _connections_consistent(graph, pattern, node_map):
            yield from _extend(graph, pattern, order, depth + 1, node_map, bound)
        del node_map[pattern_name]


def _spec_matches(
    pattern_spec: NodeSpec,
    host_spec: NodeSpec,
    params: dict[str, object],
) -> dict[str, object] | None:
    """Check spec compatibility; return extended bindings or None."""
    if pattern_spec.typ != host_spec.typ:
        return None
    if pattern_spec.in_ports != host_spec.in_ports:
        return None
    if pattern_spec.out_ports != host_spec.out_ports:
        return None
    bound = dict(params)
    for key, value in pattern_spec.params:
        host_value = host_spec.param(key, _MISSING)
        if isinstance(value, Var):
            if host_value is _MISSING:
                return None
            existing = bound.get(value.name, _MISSING)
            if existing is _MISSING:
                bound[value.name] = host_value
            elif existing != host_value:
                return None
        else:
            if host_value != value:
                return None
    return bound


_MISSING = object()


def _connections_consistent(
    graph: ExprHigh,
    pattern: ExprHigh,
    node_map: dict[str, str],
) -> bool:
    """Check pattern connections among currently mapped nodes."""
    for dst, src in pattern.connections.items():
        if dst.node in node_map and src.node in node_map:
            host_src = graph.source_of(node_map[dst.node], dst.port)
            if host_src != Endpoint(node_map[src.node], src.port):
                return False
    return True


def _finalize(
    graph: ExprHigh,
    pattern: ExprHigh,
    node_map: dict[str, str],
    params: dict[str, object],
) -> Match | None:
    """Validate boundary conditions and assemble the Match."""
    matched_hosts = set(node_map.values())

    inputs: dict[int, Endpoint] = {}
    for index, endpoint in pattern.inputs.items():
        host = Endpoint(node_map[endpoint.node], endpoint.port)
        source = graph.source_of(host.node, host.port)
        if source is not None and source.node in matched_hosts:
            return None  # boundary input is fed from inside the region
        inputs[index] = host

    outputs: dict[int, Endpoint] = {}
    for index, endpoint in pattern.outputs.items():
        host = Endpoint(node_map[endpoint.node], endpoint.port)
        sinks = graph.sinks_of(host.node, host.port)
        if any(sink.node in matched_hosts for sink in sinks):
            return None  # boundary output feeds back into the region
        outputs[index] = host

    # Host connections touching the region must all be accounted for: either
    # a pattern-internal connection or a crossing at an interface port.
    interface_ports = set(inputs.values()) | set(outputs.values())
    internal = {
        (Endpoint(node_map[src.node], src.port), Endpoint(node_map[dst.node], dst.port))
        for dst, src in pattern.connections.items()
    }
    for dst, src in graph.connections.items():
        touches_dst = dst.node in matched_hosts
        touches_src = src.node in matched_hosts
        if touches_dst and touches_src:
            if (src, dst) not in internal:
                return None  # extra edge inside the region not in the pattern
        elif touches_dst and dst not in interface_ports:
            return None
        elif touches_src and src not in interface_ports:
            return None

    return Match(
        nodes=dict(node_map),
        params=dict(params),
        inputs=inputs,
        outputs=outputs,
        host_specs={node_map[p]: graph.nodes[node_map[p]] for p in node_map},
    )
