"""Section 6.3 analogue: rewriting statistics per benchmark.

The paper reports the scale of its rewriting runs (e.g. matvec: 90 nodes /
1650 rewrites / 9.76 s; gemm: 180 nodes / 4416 rewrites / 81.49 s).  The
absolute counts depend on the rewrite granularity — our pipeline composes
Pure bodies through the purifier rather than thousands of micro-rewrites —
but the *scaling shape* (more nodes ⇒ more rewriting work, superlinearly)
is the reproducible claim, and this module measures it.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from ..benchmarks import load_benchmark
from ..components import default_environment
from ..hls.frontend import compile_program
from ..rewriting.pipeline import GraphitiPipeline
from . import paper_data


@dataclass
class DevStats:
    benchmark: str
    nodes: int
    rewrites: int
    composition_steps: int
    seconds: float
    transformed_loops: int
    refused_loops: int

    @property
    def total_steps(self) -> int:
        return self.rewrites + self.composition_steps


def measure(benchmark: str) -> DevStats:
    """Run the pipeline on *benchmark* and collect rewriting statistics."""
    program = load_benchmark(benchmark)
    env = default_environment()
    compiled = compile_program(program, env)

    start = perf_counter()
    rewrites = 0
    composition = 0
    transformed = 0
    refused = 0
    nodes = compiled.total_nodes()
    for ck in compiled.kernels:
        pipeline = GraphitiPipeline(env)
        outcome = pipeline.transform_kernel(ck.graph, ck.mark)
        rewrites += outcome.rewrites_applied
        composition += outcome.composition_steps
        if outcome.transformed:
            transformed += 1
        else:
            refused += 1
    return DevStats(
        benchmark=benchmark,
        nodes=nodes,
        rewrites=rewrites,
        composition_steps=composition,
        seconds=perf_counter() - start,
        transformed_loops=transformed,
        refused_loops=refused,
    )


def report(benchmarks=paper_data.BENCHMARKS) -> str:
    """Render the section 6.3 style table with paper reference points."""
    lines = [
        "Section 6.3 — rewriting statistics",
        f"{'benchmark':14s}{'nodes':>7s}{'rewrites':>10s}{'compose':>9s}{'steps':>7s}{'sec':>8s}{'paper':>22s}",
    ]
    stats = [measure(name) for name in benchmarks]
    for entry in stats:
        paper = paper_data.PAPER_DEV_STATS.get(entry.benchmark)
        paper_text = (
            f"{paper['nodes']}n/{paper['rewrites']}rw/{paper['seconds']}s" if paper else "-"
        )
        lines.append(
            f"{entry.benchmark:14s}{entry.nodes:>7d}{entry.rewrites:>10d}"
            f"{entry.composition_steps:>9d}{entry.total_steps:>7d}{entry.seconds:>8.2f}{paper_text:>22s}"
        )
    return "\n".join(lines)
