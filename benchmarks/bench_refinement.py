"""Certified refinement checking: fresh search vs certificate recheck.

Run standalone (``python benchmarks/bench_refinement.py``) to measure, for
the bundled heavyweight rewrite obligations,

* the full weak-simulation **search** (solve the game from scratch),
* the certificate fast path split into its phases — **decode** (parse the
  compact binary container), **validate** (replay the stored witnesses
  against freshly fired moves), and **fallback** (the exhaustive
  O(relation x moves) recheck used when witnesses are absent or damaged),
* both **encodings** (JSON document vs binary container): size on disk and
  encode/decode time, and
* the **parallel batch** through ``Session.check_obligations`` — a cold run
  that populates the certificate cache, then a warm run that rechecks,

and append an entry to ``benchmarks/BENCH_refinement.json``.

``--guard`` is the CI mode: it exits 1 unless the end-to-end recheck path
(decode + validate) beats a fresh search on **every** bundled obligation
(``--floor``, default 1.0x) and clears the per-factory minimums — 1.5x on
``mux_combine`` and ``--min-speedup`` (default 3.0x) on ``ooo_loop``.
"""

_OBLIGATIONS = [
    ("repro.rewriting.rules.combine", "mux_combine", {}),
    ("repro.rewriting.rules.loop_rewrite", "ooo_loop", {"tags": 2}),
]

#: Per-factory recheck-speedup minimums enforced in guard mode.  The
#: ``ooo_loop`` entry is a placeholder overwritten by ``--min-speedup``.
_GUARD_MINS = {"mux_combine": 1.5, "ooo_loop": 3.0}


def _best_of(repeats, fn):
    from time import perf_counter

    best = float("inf")
    value = None
    for _ in range(repeats):
        start = perf_counter()
        value = fn()
        best = min(best, perf_counter() - start)
    return best, value


def collect_measurements(repeats: int = 3) -> dict:
    """Time search vs the phased recheck per bundled obligation instance.

    Both sides pay graph denotation (the recheck path re-denotes the
    modules exactly as a cache hit inside ``check_rewrite_obligation``
    would), so the ratio reflects what a warm ``Session.check_obligations``
    run actually saves.  ``recheck_seconds`` is the end-to-end fast path:
    binary decode plus witness-replay validation.
    """
    import dataclasses
    import json

    from repro.refinement.checker import (
        check_rewrite_obligation,
        recheck_obligation_certificate,
    )
    from repro.refinement.codec import from_bytes, to_bytes
    from repro.refinement.simulation import SimulationCertificate
    from repro.rewriting.rules import build_rewrite

    results = {}
    for module, factory, kwargs in _OBLIGATIONS:
        rewrite = build_rewrite(module, factory, kwargs)
        for index, (lhs, rhs, env, stimuli) in enumerate(rewrite.obligation()):
            search_seconds, report = _best_of(
                repeats, lambda: check_rewrite_obligation(lhs, rhs, env, stimuli)
            )
            certificate = report.certificate

            json_encode_seconds, payload = _best_of(repeats, certificate.to_dict)
            json_bytes = len(json.dumps(payload))
            json_decode_seconds, _ = _best_of(
                repeats, lambda: SimulationCertificate.from_dict(payload)
            )
            binary_encode_seconds, blob = _best_of(
                repeats, lambda: to_bytes(certificate)
            )
            decode_seconds, restored = _best_of(repeats, lambda: from_bytes(blob))

            validate_seconds, validated = _best_of(
                repeats,
                lambda: recheck_obligation_certificate(lhs, rhs, env, restored, stimuli),
            )
            assert validated.mode == "recheck"
            assert validated.certificate.content_hash() == certificate.content_hash()

            # Damage-path cost: strip the advisory witnesses so the recheck
            # falls back to the exhaustive per-pair pass.
            bare = dataclasses.replace(certificate, witnesses=None)
            fallback_seconds, fell_back = _best_of(
                repeats,
                lambda: recheck_obligation_certificate(lhs, rhs, env, bare, stimuli),
            )
            assert fell_back.mode == "recheck"

            recheck_seconds = decode_seconds + validate_seconds
            results[f"{factory}[{index}]"] = {
                "relation_size": len(certificate.relation),
                "impl_states": certificate.impl_states,
                "spec_states": certificate.spec_states,
                "json_bytes": json_bytes,
                "binary_bytes": len(blob),
                "size_ratio": round(json_bytes / len(blob), 2),
                "json_encode_seconds": round(json_encode_seconds, 6),
                "json_decode_seconds": round(json_decode_seconds, 6),
                "binary_encode_seconds": round(binary_encode_seconds, 6),
                "search_seconds": round(search_seconds, 6),
                "decode_seconds": round(decode_seconds, 6),
                "validate_seconds": round(validate_seconds, 6),
                "fallback_seconds": round(fallback_seconds, 6),
                "recheck_seconds": round(recheck_seconds, 6),
                "speedup": round(search_seconds / recheck_seconds, 2),
            }
    return results


def measure_batch(jobs: int = 2) -> dict:
    """Cold-then-warm ``Session.check_obligations`` over the executor pool."""
    import tempfile
    from time import perf_counter

    from repro.api import Session

    with tempfile.TemporaryDirectory() as cache_dir:
        timings = {}
        for phase in ("cold", "warm"):
            session = Session(jobs=jobs, cache_dir=cache_dir)
            start = perf_counter()
            outcomes = session.check_obligations(_OBLIGATIONS)
            timings[phase] = perf_counter() - start
            assert all(outcome["holds"] for outcome in outcomes)
            timings[f"{phase}_modes"] = [outcome["mode"] for outcome in outcomes]
    return {
        "jobs": jobs,
        "obligations": [factory for _, factory, _ in _OBLIGATIONS],
        "cold_seconds": round(timings["cold"], 6),
        "warm_seconds": round(timings["warm"], 6),
        "cold_modes": timings["cold_modes"],
        "warm_modes": timings["warm_modes"],
        "speedup": round(timings["cold"] / timings["warm"], 2),
    }


def _append_history(entry: dict) -> None:
    import json
    from pathlib import Path

    out = Path(__file__).with_name("BENCH_refinement.json")
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))


def main(argv=None) -> int:
    import argparse

    from repro._version import __version__

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--guard",
        action="store_true",
        help="exit 1 unless every obligation clears --floor and the "
        "per-factory minimums (mux_combine 1.5x, ooo_loop --min-speedup)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.0,
        help="required search/recheck ratio on EVERY obligation in guard "
        "mode (default: 1.0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required search/recheck ratio on the loop-rewrite obligations "
        "in guard mode (default: 3.0)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--jobs", type=int, default=2, help="pool width for the batch measurement"
    )
    args = parser.parse_args(argv)

    measurements = collect_measurements(repeats=args.repeats)
    batch = measure_batch(jobs=args.jobs)
    _append_history(
        {"tool_version": __version__, "obligations": measurements, "batch": batch}
    )

    if args.guard:
        minimums = dict(_GUARD_MINS, ooo_loop=args.min_speedup)
        failed = {}
        for name, row in measurements.items():
            factory = name.rsplit("[", 1)[0]
            required = max(args.floor, minimums.get(factory, args.floor))
            if row["speedup"] < required:
                failed[name] = (row["speedup"], required)
        if failed:
            print(
                "FAIL: recheck speedup below requirement on "
                + ", ".join(
                    f"{name} ({got:g}x < {need:g}x)"
                    for name, (got, need) in failed.items()
                )
            )
            return 1
        print(
            "OK: recheck speedups "
            + ", ".join(
                f"{name} {row['speedup']:g}x" for name, row in measurements.items()
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
