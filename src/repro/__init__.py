"""Graphiti, reproduced in Python.

A reproduction of *"Graphiti: Formally Verified Out-of-Order Execution in
Dataflow Circuits"* (ASPLOS 2026): the ExprHigh/ExprLow graph languages,
executable module semantics with the paper's combinators, a bounded
weak-simulation refinement checker standing in for the Lean proofs, the
rewriting engine with the five-phase out-of-order pipeline, an e-graph
oracle, a cycle-level elastic-circuit simulator, and the full evaluation
harness (Tables 2-3, Figure 8, the section 6.3 statistics, and the bicg
bug).

Quick tour::

    from repro import (
        default_environment, ExprHigh, denote,        # build + denote graphs
        refines, check_rewrite_obligation,            # refinement checking
        GraphitiPipeline,                             # the OoO pipeline
        run_benchmark,                                # the evaluation harness
    )

See README.md for the architecture overview and examples/ for runnable
walkthroughs.
"""

from .components import default_environment
from .core import (
    Environment,
    ExprHigh,
    ExprLow,
    Module,
    NodeSpec,
    denote,
)
from .dot import parse_dot, print_dot
from .errors import GraphitiError
from .eval.runner import run_benchmark
from .refinement import (
    check_graph_refinement,
    check_refinement,
    check_rewrite_obligation,
    find_weak_simulation,
    refines,
    trace_inclusion,
)
from .rewriting import GraphitiPipeline, Rewrite, RewriteEngine, Var

__version__ = "1.0.0"

__all__ = [
    "default_environment",
    "Environment",
    "ExprHigh",
    "ExprLow",
    "Module",
    "NodeSpec",
    "denote",
    "parse_dot",
    "print_dot",
    "GraphitiError",
    "run_benchmark",
    "check_graph_refinement",
    "check_refinement",
    "check_rewrite_obligation",
    "find_weak_simulation",
    "refines",
    "trace_inclusion",
    "GraphitiPipeline",
    "Rewrite",
    "RewriteEngine",
    "Var",
    "__version__",
]
