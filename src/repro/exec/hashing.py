"""Canonical fingerprints for cache keys.

A cached result is only reusable when *everything* that determined it is
unchanged, so every key produced here is a SHA-256 over a canonical
rendering of:

* the ExprHigh graph(s) involved (sorted nodes with their encoded
  component strings, sorted connections, and the I/O interface);
* the environment signature (queue capacity plus the registered builder
  and function names — see :meth:`repro.core.environment.Environment.signature`);
* the stimuli (per-port value sequences, or a benchmark's IR and array
  contents);
* the tool version (:data:`TOOL_VERSION`), so upgrading the reproduction
  invalidates every prior entry.

Fingerprints are plain hex strings; :func:`fingerprint` combines parts
with an unambiguous separator so ``("ab", "c")`` and ``("a", "bc")`` hash
differently.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence

import numpy as np

from .._version import __version__ as TOOL_VERSION
from ..core.environment import Environment
from ..core.exprhigh import ExprHigh

_SEP = "\x1f"  # ASCII unit separator: cannot occur in the rendered parts


def fingerprint(*parts: str) -> str:
    """SHA-256 over the parts, keeping part boundaries unambiguous."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8", "backslashreplace"))
        digest.update(_SEP.encode())
    return digest.hexdigest()


def graph_fingerprint(graph: ExprHigh) -> str:
    """Canonical hash of an ExprHigh graph.

    Node insertion order does not matter; names, component types,
    parameters, port lists, connections and the external interface all do.
    Parameters are rendered through ``repr`` of the sorted parameter tuple,
    which is total (it also covers pattern metavariables) and deterministic
    for every value kind the graphs carry.
    """
    nodes = [
        f"{name}|{spec.typ}|{spec.in_ports!r}|{spec.out_ports!r}|{spec.params!r}"
        for name, spec in sorted(graph.nodes.items())
    ]
    connections = [f"{dst}<-{src}" for dst, src in graph.sorted_connections()]
    inputs = [f"{index}:{endpoint}" for index, endpoint in sorted(graph.inputs.items())]
    outputs = [f"{index}:{endpoint}" for index, endpoint in sorted(graph.outputs.items())]
    return fingerprint(
        "graph",
        ";".join(nodes),
        ";".join(connections),
        ";".join(inputs),
        ";".join(outputs),
    )


def stimuli_fingerprint(stimuli: Mapping | None) -> str:
    """Hash a stimuli mapping (port → finite value sequence)."""
    if stimuli is None:
        return fingerprint("stimuli", "none")
    rows = sorted(f"{port}={tuple(values)!r}" for port, values in stimuli.items())
    return fingerprint("stimuli", ";".join(rows))


def array_fingerprint(name: str, array: np.ndarray) -> str:
    digest = hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()
    return f"{name}:{array.dtype.str}:{array.shape}:{digest}"


def program_fingerprint(program) -> str:
    """Hash a mini-IR program: kernels plus initial array contents.

    The IR is a tree of frozen dataclasses, so ``repr`` is a faithful
    canonical rendering; arrays hash their dtype, shape and raw bytes.
    """
    arrays = [array_fingerprint(name, array) for name, array in sorted(program.arrays.items())]
    return fingerprint("program", program.name, repr(program.kernels), ";".join(arrays))


def eval_unit_key(
    flow: str, program, compiled, env: Environment, backend: str = "compiled"
) -> str:
    """Cache key for one (benchmark × flow) evaluation run.

    *compiled* is the :class:`~repro.hls.frontend.CompiledProgram`; hashing
    the compiled kernel graphs (not just the IR) means any front-end change
    that alters the circuits also invalidates the cache.  The simulation
    *backend* is part of the key: backends are cycle-identical by contract,
    but keeping their entries distinct means a differential rerun
    (``backend="interp"``) never serves the other backend's cached result.
    """
    kernel_parts: list[str] = []
    for ck in compiled.kernels:
        kernel_parts.append(graph_fingerprint(ck.graph))
        kernel_parts.append(repr(ck.mark))
    return fingerprint(
        "eval",
        TOOL_VERSION,
        flow,
        backend,
        program_fingerprint(program),
        env.signature(),
        *kernel_parts,
    )


def obligation_fingerprint(name: str, instances: Sequence[tuple]) -> str:
    """Cache key for a rewrite's refinement-obligation discharge.

    *instances* are the rewrite's ``(lhs, rhs, env, stimuli)`` obligation
    instances; the key covers each instance's graphs, environment signature
    and stimuli, plus the tool version.
    """
    parts: list[str] = ["obligation", TOOL_VERSION, name]
    for lhs, rhs, env, stimuli in instances:
        parts.append(graph_fingerprint(lhs))
        parts.append(graph_fingerprint(rhs))
        parts.append(env.signature())
        parts.append(stimuli_fingerprint(stimuli))
    return fingerprint(*parts)


def certificate_key(
    impl: ExprHigh,
    spec: ExprHigh,
    env: Environment,
    stimuli: Mapping | None,
    spec_capacity: int | None = None,
) -> str:
    """Cache key for a persisted simulation certificate.

    Distinct from :func:`weak_sim_key` (which addresses a check's *verdict*
    dict) because the payload shape differs: this key addresses the
    serialised :class:`~repro.refinement.simulation.SimulationCertificate`
    itself, which the reader re-validates rather than trusts.  Covers both
    graphs, the environment signature, the stimuli, the spec capacity and
    the tool version — any drift in what the certificate is evidence *for*
    misses the cache and forces a fresh search.
    """
    return fingerprint(
        "sim-certificate",
        TOOL_VERSION,
        graph_fingerprint(impl),
        graph_fingerprint(spec),
        env.signature(),
        stimuli_fingerprint(stimuli),
        repr(spec_capacity),
    )


def fuzz_case_key(seed: int, backend: str = "compiled") -> str:
    """Cache key for one differential fuzz case.

    A case is a pure function of its seed (the generator and the whole
    flow under test are deterministic), so the key only needs the seed,
    the simulation backend and the tool version — any change to the
    generator, the transforms or the simulators ships as a new version
    and invalidates the corpus.
    """
    return fingerprint("fuzz-case", TOOL_VERSION, str(int(seed)), backend)


def sat_cross_check_key(name: str, instances: Sequence[tuple], bound: int) -> str:
    """Cache key for a rewrite's SAT-vs-game cross-check verdict."""
    parts: list[str] = ["sat-cross-check", TOOL_VERSION, name, str(int(bound))]
    for lhs, rhs, env, stimuli in instances:
        parts.append(graph_fingerprint(lhs))
        parts.append(graph_fingerprint(rhs))
        parts.append(env.signature())
        parts.append(stimuli_fingerprint(stimuli))
    return fingerprint(*parts)


def weak_sim_key(
    impl: ExprHigh,
    spec: ExprHigh,
    env: Environment,
    stimuli: Mapping | None,
    values: Iterable | None = None,
    spec_capacity: int | None = None,
) -> str:
    """Cache key for one weak-simulation (graph refinement) check."""
    return fingerprint(
        "weak-sim",
        TOOL_VERSION,
        graph_fingerprint(impl),
        graph_fingerprint(spec),
        env.signature(),
        stimuli_fingerprint(stimuli),
        repr(tuple(values) if values is not None else None),
        repr(spec_capacity),
    )
