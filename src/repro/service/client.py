"""A thin blocking client for the verification service.

:class:`ServiceClient` speaks the service's small HTTP surface over
:mod:`http.client` — one connection per request (the server closes every
connection), JSON bodies both ways, and a generator over the NDJSON
``?watch=1`` status stream.  It is what ``benchmarks/bench_service.py``
and the CI smoke check use; being synchronous, it is trivially driven
from thread pools for concurrent-load testing.

Typical round trip::

    client = ServiceClient(port=8750)
    job = client.submit("transform", {"kernel": "matvec"})
    final = client.wait(job["id"])          # consumes the watch stream
    result = client.result(job["id"])       # versioned wire dict
    graph = TransformResult.from_dict(result).graph
"""

from __future__ import annotations

import http.client
import json
from typing import Iterator, Mapping

from ..errors import ServiceError


class ServiceClient:
    """Blocking HTTP client for one :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8750, timeout: float = 300.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str, payload: Mapping | None = None) -> dict | list:
        connection = self._connect()
        try:
            body = json.dumps(payload) if payload is not None else None
            connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            data = json.loads(response.read().decode() or "null")
            if response.status >= 400:
                error = data.get("error", data) if isinstance(data, dict) else data
                raise ServiceError(f"{method} {path} -> {response.status}: {error}")
            return data
        finally:
            connection.close()

    # -- the API surface ----------------------------------------------------

    def submit(
        self,
        kind: str,
        params: Mapping | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
        dedup: bool = True,
    ) -> dict:
        """Submit a job; returns its status dict (``done`` on a store hit)."""
        request: dict = {"kind": kind, "params": dict(params or {}), "dedup": dedup}
        if priority:
            request["priority"] = priority
        if timeout is not None:
            request["timeout"] = timeout
        return self._request("POST", "/v1/jobs", request)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def watch(self, job_id: str) -> Iterator[dict]:
        """Yield NDJSON status lines until the job reaches a terminal state."""
        connection = self._connect()
        try:
            connection.request("GET", f"/v1/jobs/{job_id}?watch=1")
            response = connection.getresponse()
            if response.status >= 400:
                data = json.loads(response.read().decode() or "{}")
                raise ServiceError(
                    f"watch {job_id} -> {response.status}: {data.get('error', data)}"
                )
            while True:
                line = response.readline()
                if not line:
                    return
                yield json.loads(line.decode())
        finally:
            connection.close()

    def wait(self, job_id: str) -> dict:
        """Block until terminal (via the watch stream); returns final status."""
        last: dict | None = None
        for status in self.watch(job_id):
            last = status
        if last is None:
            raise ServiceError(f"watch stream for {job_id} ended without a status")
        return last

    def result(self, job_id: str) -> dict | list:
        """The job's wire-format result (raises unless the job is ``done``)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def certificate(self, content_hash: str) -> dict:
        return self._request("GET", f"/v1/certificates/{content_hash}")

    def certificate_bytes(self, content_hash: str) -> bytes:
        """The certificate's compact binary container (content negotiation)."""
        connection = self._connect()
        try:
            connection.request(
                "GET",
                f"/v1/certificates/{content_hash}",
                headers={"Accept": "application/x-repro-certificate"},
            )
            response = connection.getresponse()
            blob = response.read()
            if response.status >= 400:
                data = json.loads(blob.decode() or "null")
                error = data.get("error", data) if isinstance(data, dict) else data
                raise ServiceError(
                    f"GET /v1/certificates/{content_hash} -> {response.status}: {error}"
                )
            return blob
        finally:
            connection.close()

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/admin/shutdown")

    # -- conveniences -------------------------------------------------------

    def run(
        self,
        kind: str,
        params: Mapping | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
        dedup: bool = True,
    ) -> dict | list:
        """Submit, wait, and return the result in one call."""
        job = self.submit(kind, params, priority=priority, timeout=timeout, dedup=dedup)
        if job["state"] != "done":
            final = self.wait(job["id"])
            if final["state"] != "done":
                raise ServiceError(
                    f"job {job['id']} ({kind}) ended {final['state']}: "
                    f"{final.get('error', 'no detail')}"
                )
        return self.result(job["id"])
