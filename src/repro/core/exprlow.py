"""ExprLow: the inductive graph language of the paper (section 4.1).

A graph is either a base component, a product of two graphs (written ⊗ in
the paper), or a connection of an output port to an input port of a graph::

    ExprLow ::= C_L | ExprLow ⊗ ExprLow | connect(o, i, ExprLow)

A base component ``C_L = P × STR`` is a component type name together with a
pair of port maps renaming the component's canonical ports to the names used
in the graph.  The inductive shape — rather than an adjacency structure — is
what makes the semantics compositional: products and connections denote
module combinators (section 4.5), and the rewriting function of section 4.2
is a structural substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import GraphError
from .ports import InternalPort, Port, PortMap


class ExprLow:
    """Base class for ExprLow expressions.  Immutable and hashable."""

    def bases(self) -> Iterator["Base"]:
        """Yield every base component, left to right."""
        raise NotImplementedError

    def connections(self) -> Iterator[tuple[Port, Port]]:
        """Yield every ``(output, input)`` pair closed by a connect."""
        raise NotImplementedError

    def dangling_inputs(self) -> frozenset[Port]:
        """Input ports not consumed by any connect — the graph's inputs."""
        raise NotImplementedError

    def dangling_outputs(self) -> frozenset[Port]:
        """Output ports not consumed by any connect — the graph's outputs."""
        raise NotImplementedError

    def substitute(self, lhs: "ExprLow", rhs: "ExprLow") -> "ExprLow":
        """The rewriting function ``e[lhs := rhs]`` of section 4.2.

        Finds syntactic occurrences of *lhs* and replaces them by *rhs*.
        The substitution recurses structurally and replaces every match.
        """
        if self == lhs:
            return rhs
        return self._substitute_children(lhs, rhs)

    def _substitute_children(self, lhs: "ExprLow", rhs: "ExprLow") -> "ExprLow":
        raise NotImplementedError

    def rename_internals(self, mapping: Mapping[str, str]) -> "ExprLow":
        """Rename instance names of internal ports throughout the expression."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of base components in the expression."""
        return sum(1 for _ in self.bases())

    def contains(self, sub: "ExprLow") -> bool:
        """Whether *sub* occurs syntactically inside this expression."""
        if self == sub:
            return True
        return any(child.contains(sub) for child in self._children())

    def _children(self) -> tuple["ExprLow", ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class Base(ExprLow):
    """A single component instance: a type name plus input/output port maps."""

    typ: str
    inputs: PortMap
    outputs: PortMap

    def __post_init__(self) -> None:
        if not self.typ:
            raise GraphError("base component requires a non-empty type name")

    def bases(self) -> Iterator["Base"]:
        yield self

    def connections(self) -> Iterator[tuple[Port, Port]]:
        return iter(())

    def dangling_inputs(self) -> frozenset[Port]:
        return self.inputs.targets()

    def dangling_outputs(self) -> frozenset[Port]:
        return self.outputs.targets()

    def _substitute_children(self, lhs: ExprLow, rhs: ExprLow) -> ExprLow:
        return self

    def rename_internals(self, mapping: Mapping[str, str]) -> "Base":
        def rename(port: Port) -> Port:
            if isinstance(port, InternalPort) and port.instance in mapping:
                return InternalPort(mapping[port.instance], port.wire)
            return port

        return Base(
            self.typ,
            PortMap({src: rename(dst) for src, dst in self.inputs.items()}),
            PortMap({src: rename(dst) for src, dst in self.outputs.items()}),
        )

    def _children(self) -> tuple[ExprLow, ...]:
        return ()

    def __str__(self) -> str:
        ins = ", ".join(f"{s}->{d}" for s, d in sorted(self.inputs.items(), key=str))
        outs = ", ".join(f"{s}->{d}" for s, d in sorted(self.outputs.items(), key=str))
        return f"[{self.typ} | in: {ins} | out: {outs}]"


@dataclass(frozen=True)
class Product(ExprLow):
    """The ⊗ constructor: two graphs side by side, ports disjoint."""

    left: ExprLow
    right: ExprLow

    def bases(self) -> Iterator[Base]:
        yield from self.left.bases()
        yield from self.right.bases()

    def connections(self) -> Iterator[tuple[Port, Port]]:
        yield from self.left.connections()
        yield from self.right.connections()

    def dangling_inputs(self) -> frozenset[Port]:
        left, right = self.left.dangling_inputs(), self.right.dangling_inputs()
        overlap = left & right
        if overlap:
            raise GraphError(f"product input ports overlap: {sorted(map(str, overlap))}")
        return left | right

    def dangling_outputs(self) -> frozenset[Port]:
        left, right = self.left.dangling_outputs(), self.right.dangling_outputs()
        overlap = left & right
        if overlap:
            raise GraphError(f"product output ports overlap: {sorted(map(str, overlap))}")
        return left | right

    def _substitute_children(self, lhs: ExprLow, rhs: ExprLow) -> ExprLow:
        return Product(self.left.substitute(lhs, rhs), self.right.substitute(lhs, rhs))

    def rename_internals(self, mapping: Mapping[str, str]) -> "Product":
        return Product(self.left.rename_internals(mapping), self.right.rename_internals(mapping))

    def _children(self) -> tuple[ExprLow, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ⊗ {self.right})"


@dataclass(frozen=True)
class Connect(ExprLow):
    """The connect constructor: joins output *output* to input *input*."""

    output: Port
    input: Port
    expr: ExprLow

    def bases(self) -> Iterator[Base]:
        yield from self.expr.bases()

    def connections(self) -> Iterator[tuple[Port, Port]]:
        yield (self.output, self.input)
        yield from self.expr.connections()

    def dangling_inputs(self) -> frozenset[Port]:
        inner = self.expr.dangling_inputs()
        if self.input not in inner:
            raise GraphError(f"connect input {self.input} is not a dangling input")
        return inner - {self.input}

    def dangling_outputs(self) -> frozenset[Port]:
        inner = self.expr.dangling_outputs()
        if self.output not in inner:
            raise GraphError(f"connect output {self.output} is not a dangling output")
        return inner - {self.output}

    def _substitute_children(self, lhs: ExprLow, rhs: ExprLow) -> ExprLow:
        return Connect(self.output, self.input, self.expr.substitute(lhs, rhs))

    def rename_internals(self, mapping: Mapping[str, str]) -> "Connect":
        def rename(port: Port) -> Port:
            if isinstance(port, InternalPort) and port.instance in mapping:
                return InternalPort(mapping[port.instance], port.wire)
            return port

        return Connect(rename(self.output), rename(self.input), self.expr.rename_internals(mapping))

    def _children(self) -> tuple[ExprLow, ...]:
        return (self.expr,)

    def __str__(self) -> str:
        return f"connect({self.output} ⇝ {self.input}, {self.expr})"


def product_fold(exprs: Sequence[ExprLow]) -> ExprLow:
    """Right-fold a non-empty sequence of expressions into a Product chain.

    The fold order is canonical: ``product_fold([a, b, c])`` always yields
    ``a ⊗ (b ⊗ c)``.  Both the lowering from ExprHigh and the construction of
    rewrite left-hand sides use this function, so syntactic matching of the
    rewriting function succeeds whenever the base components agree.
    """
    if not exprs:
        raise GraphError("cannot fold an empty sequence of expressions")
    result = exprs[-1]
    for expr in reversed(exprs[:-1]):
        result = Product(expr, result)
    return result


def build(bases: Sequence[Base], connections: Sequence[tuple[Port, Port]]) -> ExprLow:
    """Build the canonical expression: connects wrapped around a product fold.

    Connections are applied outermost-last in the given order, so
    ``build(bs, [c1, c2])`` is ``connect(c2, connect(c1, fold(bs)))``.
    """
    expr: ExprLow = product_fold(bases)
    for output, input_ in connections:
        expr = Connect(output, input_, expr)
    return expr


def check_well_formed(expr: ExprLow) -> None:
    """Validate structural invariants; raises :class:`GraphError` otherwise.

    Checks that products do not overlap ports and every connect closes ports
    that are actually dangling at that point (both checks are performed by
    the dangling-port computations).
    """
    expr.dangling_inputs()
    expr.dangling_outputs()


def isolate(
    expr: ExprLow,
    selected: Callable[[Base], bool],
) -> tuple[ExprLow, ExprLow, list[tuple[Port, Port]], list[Base]]:
    """Reassociate *expr* so the selected bases form one canonical subterm.

    This implements the "moving base components over products and
    connections" step of section 4.2: given a predicate choosing a set of
    base components, return ``(subterm, remainder_expr, crossing, rest)``
    where *subterm* is ``build(selected bases, internal connections)``, the
    internal connections being those whose both endpoints belong to selected
    bases.  The caller reconstructs the full graph as::

        build_around(subterm', rest, crossing)

    with ``subterm'`` either the isolated subterm (an equivalent expression
    to *expr*) or a replacement for it.  Equivalence of the reassociation is
    checked by the refinement test-suite rather than proved, mirroring the
    paper's strategy of proving these movements once and for all.
    """
    all_bases = list(expr.bases())
    chosen = [b for b in all_bases if selected(b)]
    rest = [b for b in all_bases if not selected(b)]
    if not chosen:
        raise GraphError("isolate: no base component selected")

    owned_inputs: frozenset[Port] = frozenset().union(*(b.inputs.targets() for b in chosen))
    owned_outputs: frozenset[Port] = frozenset().union(*(b.outputs.targets() for b in chosen))

    internal: list[tuple[Port, Port]] = []
    crossing: list[tuple[Port, Port]] = []
    for output, input_ in expr.connections():
        if output in owned_outputs and input_ in owned_inputs:
            internal.append((output, input_))
        else:
            crossing.append((output, input_))

    subterm = build(chosen, internal)
    return subterm, product_fold(rest) if rest else subterm, crossing, rest


def build_around(
    subterm: ExprLow,
    rest: Sequence[Base],
    crossing: Sequence[tuple[Port, Port]],
) -> ExprLow:
    """Reassemble a full expression around an (isolated or replaced) subterm."""
    expr: ExprLow = Product(subterm, product_fold(list(rest))) if rest else subterm
    for output, input_ in crossing:
        expr = Connect(output, input_, expr)
    return expr


def rename_ports(
    expr: ExprLow,
    in_mapping: Mapping[Port, Port],
    out_mapping: Mapping[Port, Port],
) -> ExprLow:
    """Rename individual ports throughout an expression, direction-aware.

    Input-side occurrences (base input maps, connect inputs) use
    *in_mapping*; output-side occurrences use *out_mapping*.  The two maps
    are separate because input and output port names live in distinct
    namespaces — a graph may use ``io:0`` both as an input and an output.
    Used by the rewrite application to stitch a replacement subterm's
    interface ports onto the names the surrounding graph already uses.
    """
    if isinstance(expr, Base):
        return Base(
            expr.typ,
            PortMap({src: in_mapping.get(dst, dst) for src, dst in expr.inputs.items()}),
            PortMap({src: out_mapping.get(dst, dst) for src, dst in expr.outputs.items()}),
        )
    if isinstance(expr, Product):
        return Product(
            rename_ports(expr.left, in_mapping, out_mapping),
            rename_ports(expr.right, in_mapping, out_mapping),
        )
    if isinstance(expr, Connect):
        return Connect(
            out_mapping.get(expr.output, expr.output),
            in_mapping.get(expr.input, expr.input),
            rename_ports(expr.expr, in_mapping, out_mapping),
        )
    raise GraphError(f"cannot rename ports in {type(expr).__name__}")


def instance_names(expr: ExprLow) -> frozenset[str]:
    """All instance names appearing in internal port names of *expr*."""
    names: set[str] = set()
    for base in expr.bases():
        for port in list(base.inputs.targets()) + list(base.outputs.targets()):
            if isinstance(port, InternalPort):
                names.add(port.instance)
    return frozenset(names)


def fresh_instance(existing: Iterable[str], prefix: str) -> str:
    """Return a name with the given prefix not present in *existing*."""
    taken = set(existing)
    if prefix not in taken:
        return prefix
    counter = 1
    while f"{prefix}_{counter}" in taken:
        counter += 1
    return f"{prefix}_{counter}"
