"""``repro.obs`` — the unified observability subsystem.

Hierarchical tracing, typed counters and profiling hooks shared by the
transform, verify and bench paths (see ``docs/api.md``, "Observability").
Zero dependencies, near-zero cost when idle: without an attached sink,
:func:`span` hands back a shared no-op context manager.

Typical use::

    from repro import obs

    sink = obs.get_tracer().attach(obs.InMemorySink())
    with obs.span("transform", kernel="gcd"):
        with obs.span("phase:purify") as sp:
            ...
            sp.set(steps=12)
    print(obs.render_tree(sink.spans))

The CLI exposes the same machinery as ``--trace FILE`` (JSONL export via
:class:`JsonlSink`) and ``--profile`` (span tree via :func:`render_tree`);
:meth:`repro.api.Session.metrics` rolls the counters into one
:class:`MetricsSnapshot`.
"""

from .core import (
    Span,
    Tracer,
    count,
    gauge,
    get_tracer,
    scoped_tracer,
    set_tracer,
    span,
    use_tracer,
)
from .metrics import MetricsSnapshot
from .sinks import InMemorySink, JsonlSink, render_tree

__all__ = [
    "Span",
    "Tracer",
    "count",
    "gauge",
    "get_tracer",
    "scoped_tracer",
    "set_tracer",
    "span",
    "use_tracer",
    "MetricsSnapshot",
    "InMemorySink",
    "JsonlSink",
    "render_tree",
]
