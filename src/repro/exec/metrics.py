"""Per-unit timing and accounting for the executor.

Every work unit the executor touches leaves one :class:`UnitMetric` —
whether it was served from cache, computed in a pool worker, computed
serially, or retried after a worker failure.  The aggregate
:class:`ExecutorMetrics` is what tests assert on (e.g. "a warm rerun
performs zero recomputation" is ``metrics.executed == 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class UnitMetric:
    """One unit's outcome: where it ran and how long it took."""

    uid: str
    seconds: float
    cached: bool
    mode: str = "serial"  # "cache" | "serial" | "pool"
    retried: bool = False


@dataclass
class ExecutorMetrics:
    units: list[UnitMetric] = field(default_factory=list)

    def record(self, metric: UnitMetric) -> None:
        self.units.append(metric)

    # -- aggregates ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(1 for unit in self.units if unit.cached)

    @property
    def executed(self) -> int:
        """Units actually recomputed (anything not served from cache)."""
        return sum(1 for unit in self.units if not unit.cached)

    @property
    def retries(self) -> int:
        return sum(1 for unit in self.units if unit.retried)

    @property
    def total_seconds(self) -> float:
        return sum(unit.seconds for unit in self.units)

    def to_dict(self) -> dict:
        return {
            "units": len(self.units),
            "hits": self.hits,
            "executed": self.executed,
            "retries": self.retries,
            "total_seconds": self.total_seconds,
        }

    def summary(self) -> str:
        return (
            f"{len(self.units)} units: {self.hits} cached, {self.executed} executed"
            f" ({self.retries} retried), {self.total_seconds:.2f}s work"
        )
