"""Evaluation harness: Tables 2/3, Figure 8, and section 6.3 statistics."""

from . import paper_data
from .ablation import SteeringComparison, TagSweepPoint, steering_comparison, tag_sweep
from .devstats import DevStats, measure
from .report import (
    ShapeCheck,
    clock_table,
    cycle_table,
    dsp_table,
    exec_time_table,
    ff_table,
    figure8_series,
    full_report,
    lut_table,
    render_figure8,
    shape_checks,
)
from .runner import BenchmarkResult, FlowResult, run_benchmark

__all__ = [
    "paper_data",
    "SteeringComparison",
    "TagSweepPoint",
    "steering_comparison",
    "tag_sweep",
    "DevStats",
    "measure",
    "ShapeCheck",
    "clock_table",
    "cycle_table",
    "dsp_table",
    "exec_time_table",
    "ff_table",
    "figure8_series",
    "full_report",
    "lut_table",
    "render_figure8",
    "shape_checks",
    "BenchmarkResult",
    "FlowResult",
    "run_benchmark",
]
