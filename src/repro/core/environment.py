"""The environment ε: a map from component names to semantic modules.

Figure 7 of the paper defines ``ε ∈ Env ≜ STR ↦ Σ_S 𝓜(S)``.  Here the
environment is a registry of *builders*: a component string (see
:mod:`repro.core.encoding`) decodes to a name plus parameters, and the
builder registered under that name constructs the module.  The environment
also owns a function registry, so Pure and Operator components can reference
Python functions by name while keeping graphs serialisable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..errors import SemanticsError
from .encoding import decode_component
from .module import Module

Builder = Callable[[dict, "Environment"], Module]


@dataclass(frozen=True)
class FunctionDef:
    """A named pure function usable by Pure / Operator components."""

    name: str
    fn: Callable
    arity: int

    def __call__(self, *args: object) -> object:
        if len(args) != self.arity:
            raise SemanticsError(
                f"function {self.name!r} expects {self.arity} arguments, got {len(args)}"
            )
        return self.fn(*args)


class Environment:
    """A component environment with builder and function registries.

    The *capacity* attribute bounds every internal queue built by component
    builders; ``None`` leaves queues unbounded (used for trace simulation),
    while refinement checking uses small bounds to keep state spaces finite.
    """

    def __init__(self, capacity: int | None = None):
        self.capacity = capacity
        self._builders: dict[str, Builder] = {}
        self._functions: dict[str, FunctionDef] = {}

    # -- registration -------------------------------------------------------

    def register(self, name: str, builder: Builder) -> None:
        if name in self._builders:
            raise SemanticsError(f"component builder {name!r} registered twice")
        self._builders[name] = builder

    def register_function(self, name: str, fn: Callable, arity: int) -> FunctionDef:
        definition = FunctionDef(name, fn, arity)
        self._functions[name] = definition
        return definition

    def has_component(self, name: str) -> bool:
        return name in self._builders

    def lookup_function(self, name: str) -> FunctionDef | None:
        """Registry-only lookup (no combinator resolution); None if absent."""
        return self._functions.get(name)

    def function(self, name: str) -> FunctionDef:
        try:
            return self._functions[name]
        except KeyError:
            pass
        # Derived combinator names (comp(f,g), first(f), tup(f), ...) are
        # produced by rewrites; resolve them from their base functions so a
        # rewritten graph can be denoted without manual registration.
        if any(token in name for token in "()"):
            from ..rewriting.algebra import ensure  # lazy: avoids a cycle

            return ensure(self, name)
        raise SemanticsError(f"unknown function {name!r} in environment")

    def functions(self) -> Mapping[str, FunctionDef]:
        return dict(self._functions)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, component: str) -> Module:
        """Denote a component string into its module (the ε lookup)."""
        name, params = decode_component(component)
        builder = self._builders.get(name)
        if builder is None:
            raise SemanticsError(f"no module registered for component {name!r}")
        return builder(params, self)

    # -- identity -------------------------------------------------------------

    def signature(self) -> str:
        """A canonical string identifying this environment's semantics.

        Covers the queue capacity and the registered builder and function
        names (with arities).  Function *bodies* are assumed stable for a
        given tool version — the executor's cache keys combine this
        signature with :data:`repro.exec.hashing.TOOL_VERSION`, so semantic
        changes must be accompanied by a version bump to invalidate caches.
        """
        builders = ",".join(sorted(self._builders))
        functions = ",".join(
            f"{name}/{definition.arity}" for name, definition in sorted(self._functions.items())
        )
        return f"cap={self.capacity};builders={builders};functions={functions}"

    # -- derivation -----------------------------------------------------------

    def with_capacity(self, capacity: int | None) -> "Environment":
        """A copy of this environment with a different queue bound."""
        clone = Environment(capacity)
        clone._builders = dict(self._builders)
        clone._functions = dict(self._functions)
        return clone
