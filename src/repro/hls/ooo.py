"""The DF-OoO baseline: unverified out-of-order transformation.

This reproduces the approach of Elakhras et al. (FPGA'24) as the paper
evaluates it: the loop's Muxes are replaced by unconditional Merges *without
combining them first* (the per-variable data paths stay independent, only
the conditions are shared), a multi-stream Tagger/Untagger brackets the
loop, and every in-loop component is switched to its tagged variant.

Crucially — and deliberately — there is **no purity check**: the transform
fires even when the loop body performs stores.  That is the bug the paper
found (section 6.2): on bicg the write order of the in-body store is
permuted relative to the sequential program.  The cycle simulator makes the
divergence observable by recording store history.
"""

from __future__ import annotations

from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec
from ..errors import RewriteError
from .frontend import LoopMark


def transform_out_of_order(graph: ExprHigh, mark: LoopMark) -> ExprHigh:
    """Apply the DF-OoO transformation in place of the marked loop."""
    result = graph.copy()
    state_count = len(mark.mux_nodes)

    # 1. Remove the Init and the fork tree distributing its token to Muxes.
    _remove_wire_tree(result, mark.init_node)

    # 2. The condition fork (out0 -> branch tree, out1 -> init) loses its
    #    Init consumer; bypass it entirely.
    cond_fork = mark.cond_fork
    cond_src = result.disconnect(cond_fork, "in0")
    branch_side = result.sinks_of(cond_fork, "out0")
    if len(branch_side) != 1:
        raise RewriteError("condition fork has unexpected fan-out")
    result.remove_node(cond_fork)
    result.connect(cond_src.node, cond_src.port, branch_side[0].node, branch_side[0].port)

    # 3. Build the multi-stream Tagger: one entry per state variable, one
    #    return per exit stream.
    exit_streams = _exit_streams(graph, mark)
    tagger_name = f"tagger_{mark.kernel}"
    result.add_node(
        tagger_name,
        NodeSpec.make(
            "Tagger",
            [f"enter{i}" for i in range(state_count)] + [f"ret{i}" for i in range(len(exit_streams))],
            [f"tag{i}" for i in range(state_count)] + [f"exit{i}" for i in range(len(exit_streams))],
            {"tags": mark.tags},
        ),
    )

    # 4. Replace each Mux by a Merge fed from the Tagger.
    for index, mux_name in enumerate(mark.mux_nodes):
        spec = result.nodes[mux_name]
        if spec.typ != "Mux":
            raise RewriteError(f"marked node {mux_name!r} is not a Mux")
        loopback = result.disconnect(mux_name, "in0")
        entry = result.disconnect(mux_name, "in1")
        consumers = result.sinks_of(mux_name, "out0")
        if len(consumers) != 1:
            raise RewriteError(f"mux {mux_name!r} output fan-out unexpected")
        consumer = consumers[0]
        result.remove_node(mux_name)
        merge_name = f"merge_{mark.kernel}_{index}"
        result.add_node(merge_name, NodeSpec.make("Merge", ["in0", "in1"], ["out0"], {}))
        result.connect(loopback.node, loopback.port, merge_name, "in0")
        result.connect(entry.node, entry.port, tagger_name, f"enter{index}")
        result.connect(tagger_name, f"tag{index}", merge_name, "in1")
        result.connect(merge_name, "out0", consumer.node, consumer.port)

    # 5. Route exit streams through the untagger side.
    for slot, (branch_name, consumer) in enumerate(exit_streams):
        result.disconnect(consumer.node, consumer.port)
        result.connect(branch_name, "out1", tagger_name, f"ret{slot}")
        result.connect(tagger_name, f"exit{slot}", consumer.node, consumer.port)

    # 6. Switch every in-loop value component to its tagged variant.
    boundary = {mark.driver, mark.collector, tagger_name}
    for name, spec in list(result.nodes.items()):
        if name in boundary:
            continue
        if spec.typ in ("Operator", "Pure", "Join", "Split", "Branch", "Store"):
            result.replace_spec(name, spec.with_params(tagged=True))

    result.validate()
    return result


def _exit_streams(graph: ExprHigh, mark: LoopMark) -> list[tuple[str, Endpoint]]:
    """(branch, downstream consumer) pairs for each loop exit stream."""
    streams = []
    for branch_name in mark.branch_nodes:
        sinks = graph.sinks_of(branch_name, "out1")
        if len(sinks) != 1:
            raise RewriteError(f"branch {branch_name!r} exit fan-out unexpected")
        streams.append((branch_name, sinks[0]))
    return streams


def _remove_wire_tree(graph: ExprHigh, root: str) -> None:
    """Remove *root* and the pure fan-out tree hanging off its outputs."""
    frontier = [root]
    while frontier:
        node = frontier.pop()
        if node not in graph.nodes:
            continue
        for succ, _, _ in list(graph.successors(node)):
            if graph.nodes[succ].typ == "Fork":
                frontier.append(succ)
        graph.remove_node(node)
