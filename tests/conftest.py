"""Test-suite configuration.

Registers a fast hypothesis profile so the property tests keep the whole
suite in the tens of seconds; set ``HYPOTHESIS_PROFILE=thorough`` for a
deeper fuzzing run.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "fast",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))
