"""The figure 2 traces: in-order vs out-of-order GCD.

Run with:  pytest benchmarks/bench_gcd.py --benchmark-only -s
"""

import numpy as np
import pytest

from repro.eval.runner import run_benchmark
from repro.hls.ir import (
    BinOp,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    StoreOp,
    UnOp,
    Var,
)


def gcd_program(n: int = 12) -> Program:
    rng = np.random.default_rng(3)
    loop = DoWhile(
        "gcd",
        ("a", "b", "i"),
        {"a": Var("b"), "b": BinOp("mod", Var("a"), Var("b")), "i": Var("i")},
        UnOp("ne0", Var("b")),
        ("a", "i"),
    )
    kernel = Kernel(
        "gcd",
        loop,
        (OuterLoop("i", n),),
        {"a": Load("arr1", Var("i")), "b": Load("arr2", Var("i")), "i": Var("i")},
        (StoreOp("result", Var("i"), Var("a")),),
        tags=6,
    )
    return Program(
        "gcd",
        {
            "arr1": rng.integers(10, 4000, n),
            "arr2": rng.integers(10, 4000, n),
            "result": np.zeros(n, dtype=np.int64),
        },
        [kernel],
    )


@pytest.fixture(scope="module")
def gcd_result():
    return run_benchmark("gcd", gcd_program())


def test_print_traces(gcd_result, once):
    from repro.eval.runner import simulate_flow
    from repro.sim.trace import render_timeline

    print()
    print("figure 2d/2e — GCD over two arrays")
    for flow in ("DF-IO", "DF-OoO", "GRAPHITI", "Vericert"):
        fr = gcd_result[flow]
        print(f"  {flow:10s} {fr.cycles:>6d} cycles  correct={fr.correct}")
    print()
    for flow, figure in (("DF-IO", "figure 2d (in-order)"), ("GRAPHITI", "figure 2e (out-of-order)")):
        stats, trace, graph = simulate_flow(gcd_program(), flow)
        mod = next(
            name
            for name, spec in graph.nodes.items()
            if spec.typ == "Operator" and str(spec.param("op")).startswith("mod")
        )
        print(f"  {figure}: modulo-unit initiations")
        art = render_timeline(
            trace, [mod], end=min(stats.cycles, 128), width=64,
            labels={mod: "mod unit"}, initiations_only=True,
        )
        for line in art.splitlines():
            print("   ", line)
        print(
            f"    utilization {trace.utilization(mod, stats.cycles):.0%}, "
            f"IIs {sorted(set(trace.initiation_intervals(mod)))[:4]}"
        )


def test_modulo_pipeline_filled(gcd_result, once):
    """The whole point of figure 2e: tagged execution keeps the pipelined
    modulo unit busy, cutting cycles by several x."""
    assert gcd_result["GRAPHITI"].cycles < gcd_result["DF-IO"].cycles / 2


def test_results_correct_in_all_flows(gcd_result, once):
    for flow in ("DF-IO", "DF-OoO", "GRAPHITI"):
        assert gcd_result[flow].correct


@pytest.mark.benchmark(group="gcd")
def test_benchmark_gcd_simulation(benchmark):
    benchmark.pedantic(lambda: run_benchmark("gcd", gcd_program()), rounds=1, iterations=1)
