"""Well-typed graphs: connections must join ports of equal type (§6.3).

The paper bridges the parametric environment of the loop-rewrite proof and
the concrete environment of an input graph by demanding *well-typed
graphs*: every connection relates an output and an input of the same type,
which lets the types of the whole graph be deduced.  This module implements
that deduction: each component contributes a (possibly polymorphic) port
signature with node-local type variables, connections contribute equations,
and unification either produces a full port-type assignment or pinpoints
the ill-typed connection.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import TypeCheckError
from .exprhigh import Endpoint, ExprHigh, NodeSpec
from .types import BOOL, I32, UNIT, TaggedType, TupleType, Type, TypeVar


def _v(node: str, label: str) -> TypeVar:
    return TypeVar(f"{node}.{label}")


def _maybe_tagged(spec: NodeSpec, typ: Type) -> Type:
    if spec.param("tagged"):
        return TaggedType(typ)
    return typ


Signature = tuple[list[Type], list[Type]]


def signature(node: str, spec: NodeSpec) -> Signature:
    """Port types of one instance, over node-local type variables."""
    a, b = _v(node, "a"), _v(node, "b")
    typ = spec.typ
    if typ == "Fork":
        return [a], [a] * len(spec.out_ports)
    if typ == "Join":
        if spec.param("tagged"):
            return [TaggedType(a), TaggedType(b)], [TaggedType(TupleType(a, b))]
        return [a, b], [TupleType(a, b)]
    if typ == "Split":
        if spec.param("tagged"):
            return [TaggedType(TupleType(a, b))], [TaggedType(a), TaggedType(b)]
        return [TupleType(a, b)], [a, b]
    if typ == "Mux":
        return [BOOL, a, a], [a]
    if typ == "Branch":
        cond = _maybe_tagged(spec, BOOL)
        data = _maybe_tagged(spec, a)
        return [cond, data], [data, data]
    if typ == "Merge":
        return [a, a], [a]
    if typ == "CMerge":
        return [a, a], [a, BOOL]
    if typ == "Init":
        return [BOOL], [BOOL]
    if typ == "Buffer":
        return [a], [a]
    if typ == "Sink":
        return [a], []
    if typ == "Source":
        return [], [UNIT]
    if typ == "Constant":
        return [UNIT], [a]
    if typ == "Store":
        return [_maybe_tagged(spec, I32), _maybe_tagged(spec, a)], [UNIT]
    if typ == "Tagger":
        # in0: plain value in; in1: tagged result back; out0: tagged value
        # out; out1: plain result out.  Generalized (DF-OoO) taggers pair
        # enter_i/tag_i and ret_j/exit_j positionally.
        ins: list[Type] = []
        outs: list[Type] = []
        enter = [p for p in spec.in_ports if p.startswith("enter")] or ["in0"]
        rets = [p for p in spec.in_ports if p.startswith("ret")] or ["in1"]
        for index, _ in enumerate(enter):
            ins.append(_v(node, f"e{index}"))
        for index, _ in enumerate(rets):
            ins.append(TaggedType(_v(node, f"r{index}")))
        for index, _ in enumerate(enter):
            outs.append(TaggedType(_v(node, f"e{index}")))
        for index, _ in enumerate(rets):
            outs.append(_v(node, f"r{index}"))
        return ins, outs
    if typ == "Reorg":
        return [a], [b]
    if typ in ("Pure", "Operator", "Driver", "Collector"):
        # Polymorphic computations: declared types win, fresh vars otherwise.
        declared_in = spec.param("in_type")
        declared_out = spec.param("out_type")
        ins = [
            _maybe_tagged(spec, declared_in if isinstance(declared_in, Type) else _v(node, f"i{i}"))
            for i in range(len(spec.in_ports))
        ]
        outs = [
            _maybe_tagged(spec, declared_out if isinstance(declared_out, Type) else _v(node, f"o{i}"))
            for i in range(len(spec.out_ports))
        ]
        return ins, outs
    raise TypeCheckError(f"no type signature for component type {typ!r}")


def _unify_into(pattern: Type, concrete: Type, subst: dict[str, Type], where: str) -> None:
    """Two-sided unification with an explicit substitution map."""
    pattern = _walk(pattern, subst)
    concrete = _walk(concrete, subst)
    if isinstance(pattern, TypeVar):
        if pattern != concrete:
            _occurs(pattern, concrete, where)
            subst[pattern.name] = concrete
        return
    if isinstance(concrete, TypeVar):
        subst[concrete.name] = pattern
        return
    if isinstance(pattern, TupleType) and isinstance(concrete, TupleType):
        _unify_into(pattern.left, concrete.left, subst, where)
        _unify_into(pattern.right, concrete.right, subst, where)
        return
    if isinstance(pattern, TaggedType) and isinstance(concrete, TaggedType):
        if pattern.tag_bits != concrete.tag_bits:
            raise TypeCheckError(f"{where}: tag width {pattern} vs {concrete}")
        _unify_into(pattern.inner, concrete.inner, subst, where)
        return
    if pattern == concrete:
        return
    raise TypeCheckError(f"{where}: cannot unify {pattern} with {concrete}")


def _walk(typ: Type, subst: Mapping[str, Type]) -> Type:
    while isinstance(typ, TypeVar) and typ.name in subst:
        typ = subst[typ.name]
    if isinstance(typ, TupleType):
        return TupleType(_walk(typ.left, subst), _walk(typ.right, subst))
    if isinstance(typ, TaggedType):
        return TaggedType(_walk(typ.inner, subst), typ.tag_bits)
    return typ


def _occurs(var: TypeVar, typ: Type, where: str) -> None:
    if var.name in typ.free_vars():
        raise TypeCheckError(f"{where}: occurs check failed for {var} in {typ}")


def typecheck(
    graph: ExprHigh,
    input_types: Mapping[int, Type] | None = None,
    require_concrete: bool = False,
) -> dict[Endpoint, Type]:
    """Deduce a type for every port; raise on an ill-typed connection.

    *input_types* optionally pins the graph's external inputs.  With
    *require_concrete* the deduction must resolve every port to a concrete
    type (no free variables), the condition the paper's concrete
    environments satisfy.
    """
    port_type: dict[Endpoint, Type] = {}
    subst: dict[str, Type] = {}
    for node, spec in graph.nodes.items():
        ins, outs = signature(node, spec)
        if len(ins) != len(spec.in_ports) or len(outs) != len(spec.out_ports):
            raise TypeCheckError(f"signature arity mismatch on {node!r}")
        for port, typ in zip(spec.in_ports, ins):
            port_type[Endpoint(node, port)] = typ
        for port, typ in zip(spec.out_ports, outs):
            port_type[Endpoint(node, port)] = typ

    for index, typ in (input_types or {}).items():
        endpoint = graph.inputs.get(index)
        if endpoint is None:
            raise TypeCheckError(f"no external input with index {index}")
        _unify_into(port_type[endpoint], typ, subst, f"input {index}")

    for dst, src in graph.connections.items():
        _unify_into(
            port_type[src], port_type[dst], subst, f"connection {src} ⇝ {dst}"
        )

    resolved = {endpoint: _walk(typ, subst) for endpoint, typ in port_type.items()}
    if require_concrete:
        loose = [str(e) for e, t in resolved.items() if t.free_vars()]
        if loose:
            raise TypeCheckError(f"ports with undetermined types: {sorted(loose)[:8]}")
    return resolved
