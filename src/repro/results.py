"""The common result protocol and the versioned wire format.

Every user-facing result object — :class:`~repro.rewriting.pipeline.TransformResult`,
:class:`~repro.refinement.checker.RefinementReport`,
:class:`~repro.eval.runner.FlowResult` (and its aggregate
:class:`~repro.eval.runner.BenchmarkResult`),
:class:`~repro.sim.cycle.SimStats` and :class:`~repro.obs.MetricsSnapshot` —
implements the same protocol, so the CLI, the cache serialiser, the report
generators and the verification service handle them uniformly instead of
special-casing each type:

* ``to_dict()`` — a JSON-serialisable dict, always carrying a ``"kind"``
  discriminator and a ``"schema_version"`` stamp;
* ``summary()`` — a one-line human-readable digest;
* ``from_dict(data)`` — the inverse of ``to_dict``, validating the kind
  and schema version and raising :class:`ResultSchemaError` on drift.

Since v1.7 the dict form is a *versioned wire contract*: it is what the
``repro.service`` job server returns from ``GET /v1/jobs/{id}/result``,
what the content-addressed caches persist, and what
:func:`from_wire` turns back into typed objects.  :data:`SCHEMA_VERSION`
is bumped whenever a field changes meaning; readers reject unknown or
missing versions instead of guessing.
"""

from __future__ import annotations

from typing import Callable, Mapping, Protocol, runtime_checkable

from .errors import GraphitiError, ResultSchemaError

#: The wire-format version stamped into every ``to_dict()`` payload.
#: Bump on any change to a result type's dict shape; ``from_dict``
#: readers reject versions they do not know.
SCHEMA_VERSION = 1


@runtime_checkable
class Result(Protocol):
    """Anything with a dict form and a one-line summary."""

    def to_dict(self) -> dict: ...

    def summary(self) -> str: ...


#: ``kind`` discriminator → ``"module:Class"`` owning the matching
#: ``from_dict``.  Lazy import specs keep this module dependency-free.
_WIRE_KINDS: dict[str, str] = {
    "TransformResult": "repro.rewriting.pipeline:TransformResult",
    "RefinementReport": "repro.refinement.checker:RefinementReport",
    "FlowResult": "repro.eval.runner:FlowResult",
    "BenchmarkResult": "repro.eval.runner:BenchmarkResult",
    "SimStats": "repro.sim.cycle:SimStats",
    "MetricsSnapshot": "repro.obs.metrics:MetricsSnapshot",
}


def check_schema(data: object, kind: str | None = None) -> dict:
    """Validate a wire dict's envelope; returns *data* on success.

    Raises :class:`ResultSchemaError` unless *data* is a mapping carrying
    a known ``schema_version`` (missing counts as unknown — pre-v1.7
    payloads are rejected, not guessed at) and, when *kind* is given, the
    matching ``kind`` discriminator.
    """
    if not isinstance(data, Mapping):
        raise ResultSchemaError(
            f"wire-format result must be a mapping, got {type(data).__name__}"
        )
    version = data.get("schema_version")
    if version is None:
        raise ResultSchemaError(
            f"wire-format result is missing 'schema_version' "
            f"(kind={data.get('kind')!r}); pre-versioned payloads are not accepted"
        )
    if not isinstance(version, int) or not 1 <= version <= SCHEMA_VERSION:
        raise ResultSchemaError(
            f"unknown result schema_version {version!r} "
            f"(this reader supports 1..{SCHEMA_VERSION})"
        )
    if kind is not None and data.get("kind") != kind:
        raise ResultSchemaError(
            f"expected a {kind!r} result, got kind={data.get('kind')!r}"
        )
    return dict(data)


def _loader(kind: str) -> Callable[[dict], object]:
    import importlib

    spec = _WIRE_KINDS.get(kind)
    if spec is None:
        raise ResultSchemaError(
            f"unknown result kind {kind!r}; known kinds: {sorted(_WIRE_KINDS)}"
        )
    module_name, _, attr = spec.partition(":")
    cls = getattr(importlib.import_module(module_name), attr)
    return cls.from_dict


def to_wire(result: object) -> dict:
    """``result.to_dict()``, checked to carry a valid wire envelope."""
    return check_schema(as_dict(result))


def from_wire(data: object) -> object:
    """Rebuild the typed result object from its wire dict.

    Dispatches on the ``kind`` discriminator after validating the schema
    version; unknown kinds and unknown/missing versions raise
    :class:`ResultSchemaError`.
    """
    entry = check_schema(data)
    kind = entry.get("kind")
    if not isinstance(kind, str):
        raise ResultSchemaError(f"wire-format result has no 'kind' discriminator: {entry.keys()}")
    return _loader(kind)(entry)


def as_dict(result: object) -> dict:
    """``result.to_dict()``, with a clear error for non-conforming objects."""
    if not isinstance(result, Result):
        raise GraphitiError(
            f"{type(result).__name__} does not implement the result protocol "
            "(to_dict/summary)"
        )
    return result.to_dict()


def summarize(result: object) -> str:
    """``result.summary()``, with a clear error for non-conforming objects."""
    if not isinstance(result, Result):
        raise GraphitiError(
            f"{type(result).__name__} does not implement the result protocol "
            "(to_dict/summary)"
        )
    return result.summary()
