"""The equality-saturation backend: fingerprints, e-graph, budget, frontier."""

import numpy as np
import pytest

from repro import obs
from repro.components import buffer, default_environment, fork, pure, sink
from repro.core import ExprHigh
from repro.dot import print_dot
from repro.errors import RewriteError, SaturationLimitError
from repro.exec.cache import ResultCache
from repro.hls.area import circuit_cost
from repro.hls.frontend import compile_program
from repro.hls.ir import BinOp, DoWhile, Kernel, Load, OuterLoop, Program, StoreOp, UnOp, Var
from repro.obs.core import Tracer, use_tracer
from repro.rewriting.pipeline import GraphitiPipeline
from repro.rewriting.saturate import (
    STRATEGIES,
    CircuitEGraph,
    SaturationBudget,
    SaturationStats,
    circuit_key,
    extract_pareto,
    replay_derivation,
    saturate_graph,
    saturation_rewrites,
)


def gcd_program(n=2):
    loop = DoWhile(
        "gcd",
        ("a", "b"),
        {"a": Var("b"), "b": BinOp("mod", Var("a"), Var("b"))},
        UnOp("ne0", Var("b")),
        ("a",),
    )
    kernel = Kernel(
        "gcd",
        loop,
        (OuterLoop("i", n),),
        {"a": Load("x", Var("i")), "b": Load("y", Var("i"))},
        (StoreOp("out", Var("i"), Var("a")),),
        tags=2,
    )
    return Program(
        "gcd",
        {
            "x": np.array([12, 9][:n]),
            "y": np.array([8, 6][:n]),
            "out": np.zeros(n),
        },
        [kernel],
    )


@pytest.fixture(scope="module")
def compiled_gcd():
    env = default_environment()
    return env, compile_program(gcd_program(), env).kernels[0]


def chain_graph(names):
    """pure(incr) -> buffer -> fork -> (sink, out) with the given node names."""
    p, b, f, s = names
    graph = ExprHigh()
    graph.add_node(p, pure("incr"))
    graph.add_node(b, buffer(slots=1))
    graph.add_node(f, fork(2))
    graph.add_node(s, sink())
    graph.connect(p, "out0", b, "in0")
    graph.connect(b, "out0", f, "in0")
    graph.connect(f, "out0", s, "in0")
    graph.mark_input(0, p, "in0")
    graph.mark_output(0, f, "out1")
    graph.validate()
    return graph


class TestCircuitKey:
    def test_stable_across_calls(self):
        graph = chain_graph(["p", "b", "f", "s"])
        assert circuit_key(graph) == circuit_key(graph)

    def test_independent_of_node_names(self):
        a = chain_graph(["p", "b", "f", "s"])
        b = chain_graph(["alpha", "beta", "gamma", "delta"])
        assert circuit_key(a) == circuit_key(b)

    def test_discriminates_structure(self):
        graph = chain_graph(["p", "b", "f", "s"])
        other = chain_graph(["p", "b", "f", "s"])
        other.nodes["p"] = pure("id")  # same shape, different operator
        other._rebuild_indexes()
        assert circuit_key(graph) != circuit_key(other)

    def test_discriminates_io_marking(self, compiled_gcd):
        _, ck = compiled_gcd
        pipeline = GraphitiPipeline(default_environment())
        transformed = pipeline.transform_kernel(ck.graph, ck.mark)
        assert circuit_key(ck.graph) != circuit_key(transformed.graph)


class TestCircuitEGraph:
    def test_same_circuit_interns_to_same_root(self):
        egraph = CircuitEGraph()
        graph = chain_graph(["p", "b", "f", "s"])
        renamed = chain_graph(["x1", "x2", "x3", "x4"])
        first = egraph.add_circuit(graph)
        enodes = egraph.enodes
        second = egraph.add_circuit(renamed)
        assert egraph.find(first) == egraph.find(second)
        assert egraph.enodes == enodes  # hash-consed: nothing new interned

    def test_different_circuits_get_distinct_roots(self):
        egraph = CircuitEGraph()
        graph = chain_graph(["p", "b", "f", "s"])
        other = chain_graph(["p", "b", "f", "s"])
        other.nodes["p"] = pure("id")
        other._rebuild_indexes()
        assert egraph.find(egraph.add_circuit(graph)) != egraph.find(
            egraph.add_circuit(other)
        )

    def test_union_merges_classes(self):
        egraph = CircuitEGraph()
        a = egraph.add_circuit(chain_graph(["p", "b", "f", "s"]))
        other = chain_graph(["p", "b", "f", "s"])
        other.nodes["p"] = pure("id")
        other._rebuild_indexes()
        b = egraph.add_circuit(other)
        egraph.union(a, b)
        assert egraph.find(a) == egraph.find(b)
        assert egraph.eclasses > 0


class TestSaturationBudget:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="on_exhausted"):
            SaturationBudget(on_exhausted="bogus")

    def test_error_policy_raises_on_exhaustion(self, compiled_gcd):
        _, ck = compiled_gcd
        budget = SaturationBudget(max_states=3, on_exhausted="error")
        with pytest.raises(SaturationLimitError, match="state budget"):
            saturate_graph(ck.graph, saturation_rewrites(), budget=budget)

    def test_partial_policy_returns_partial_exploration(self, compiled_gcd):
        _, ck = compiled_gcd
        budget = SaturationBudget(max_states=3, on_exhausted="partial")
        states, _, stats = saturate_graph(
            ck.graph, saturation_rewrites(), budget=budget
        )
        assert stats.budget_exhausted
        assert 1 <= len(states) <= 3
        assert extract_pareto(states)  # a partial frontier is still a frontier

    def test_iteration_budget_trips(self, compiled_gcd):
        _, ck = compiled_gcd
        budget = SaturationBudget(max_iterations=1, on_exhausted="error")
        with pytest.raises(SaturationLimitError, match="iteration budget"):
            saturate_graph(ck.graph, saturation_rewrites(), budget=budget)


class TestStrategySeam:
    def test_unknown_strategy_raises(self):
        with pytest.raises(RewriteError, match="unknown strategy 'bogus'"):
            GraphitiPipeline(default_environment(), strategy="bogus")

    def test_strategies_constant(self):
        assert STRATEGIES == ("fixpoint", "saturate")

    def test_fixpoint_result_dict_has_no_pareto(self, compiled_gcd):
        _, ck = compiled_gcd
        result = GraphitiPipeline(default_environment()).transform_kernel(
            ck.graph, ck.mark
        )
        d = result.to_dict()
        assert d["strategy"] == "fixpoint"
        assert "pareto" not in d and "best_cost" not in d

    def test_saturate_result_dict_carries_frontier(self, compiled_gcd):
        _, ck = compiled_gcd
        result = GraphitiPipeline(
            default_environment(), strategy="saturate"
        ).transform_kernel(ck.graph, ck.mark)
        d = result.to_dict()
        assert d["strategy"] == "saturate"
        assert len(d["pareto"]) == len(result.pareto) >= 2
        assert d["best_cost"] == result.best_cost.to_dict()
        assert d["fixpoint_cost"] == result.fixpoint_cost.to_dict()
        assert d["saturation"]["states"] == result.saturation["states"] > 0


class TestSaturateTransform:
    def test_best_never_worse_than_fixpoint(self, compiled_gcd):
        _, ck = compiled_gcd
        result = GraphitiPipeline(
            default_environment(), strategy="saturate"
        ).transform_kernel(ck.graph, ck.mark)
        assert result.transformed
        assert result.best_cost.time <= result.fixpoint_cost.time
        assert result.best_cost == result.pareto[0].cost or any(
            p.cost == result.best_cost for p in result.pareto
        )

    def test_frontier_is_sorted_and_non_dominated(self, compiled_gcd):
        _, ck = compiled_gcd
        result = GraphitiPipeline(
            default_environment(), strategy="saturate"
        ).transform_kernel(ck.graph, ck.mark)
        costs = [p.cost for p in result.pareto]
        assert costs == sorted(costs, key=lambda c: (c.cycles, c.area))
        for a in costs:
            assert not any(b.dominates(a) for b in costs)

    def test_deterministic_extraction(self, compiled_gcd):
        """Two independent runs extract byte-identical circuits."""
        _, ck = compiled_gcd
        runs = [
            GraphitiPipeline(
                default_environment(), strategy="saturate"
            ).transform_kernel(ck.graph, ck.mark)
            for _ in range(2)
        ]
        first, second = runs
        assert [p.cost for p in first.pareto] == [p.cost for p in second.pareto]
        assert [p.derivation for p in first.pareto] == [
            p.derivation for p in second.pareto
        ]
        for a, b in zip(first.pareto, second.pareto):
            assert print_dot(a.graph) == print_dot(b.graph)

    def test_replay_reproduces_explored_graphs(self, compiled_gcd):
        _, ck = compiled_gcd
        states, _, _ = saturate_graph(
            ck.graph,
            saturation_rewrites(),
            budget=SaturationBudget(max_states=32, max_iterations=64),
        )
        derived = [s for s in states if s.steps and s.seed == 0]
        assert derived
        for state in derived[:5]:
            assert circuit_key(replay_derivation(ck.graph, state.steps)) == state.key

    def test_stats_merge_accumulates(self):
        a = SaturationStats(states=2, rules_fired=3, per_rule={"x": 3})
        b = SaturationStats(states=1, rules_fired=1, per_rule={"x": 1, "y": 1})
        b.budget_exhausted = True
        a.merge(b)
        assert a.states == 3 and a.rules_fired == 4
        assert a.per_rule == {"x": 4, "y": 1}
        assert a.budget_exhausted


class TestCertification:
    def test_points_certified_cold_then_rechecked_warm(self, compiled_gcd, tmp_path):
        _, ck = compiled_gcd
        env = default_environment()
        counters = {}
        for phase in ("cold", "warm"):
            with use_tracer(Tracer()) as tracer:
                pipeline = GraphitiPipeline(
                    env,
                    strategy="saturate",
                    check_obligations=True,
                    cache=ResultCache(tmp_path),
                )
                result = pipeline.transform_kernel(ck.graph, ck.mark)
                counters[phase] = dict(tracer.counters)
            assert result.pareto
            assert all(p.certified for p in result.pareto)
            derived = [p for p in result.pareto if p.derivation]
            assert derived, "need derived points to exercise certification"
        assert counters["cold"].get("saturation.certify_search", 0) > 0
        assert counters["warm"].get("saturation.certify_recheck", 0) > 0
        assert counters["warm"].get("saturation.certify_search", 0) == 0

    def test_uncertified_without_obligation_checking(self, compiled_gcd):
        _, ck = compiled_gcd
        result = GraphitiPipeline(
            default_environment(), strategy="saturate"
        ).transform_kernel(ck.graph, ck.mark)
        assert all(p.certified is None for p in result.pareto)


class TestRefusedKernelSaturates:
    def test_bicg_refusal_still_yields_sound_frontier(self):
        """The pipeline refuses bicg (inter-iteration memory dependency);
        the saturate strategy explores the input with structural rules only,
        which never reorder iterations, so the frontier is still sound."""
        from repro.benchmarks import load_benchmark

        env = default_environment()
        ck = compile_program(load_benchmark("bicg"), env).kernels[0]
        result = GraphitiPipeline(
            env,
            strategy="saturate",
            budget=SaturationBudget(max_states=24, max_iterations=48),
        ).transform_kernel(ck.graph, ck.mark)
        assert not result.transformed and result.refusal is not None
        assert result.pareto
        assert result.best_cost.time <= circuit_cost(ck.graph).time
        assert "refus" in result.summary()


class TestSessionSurface:
    def test_session_transform_saturate_and_metrics(self, tmp_path):
        from repro.api import Session

        session = Session(use_cache=False)
        ck = compile_program(gcd_program(), session.env).kernels[0]
        result = session.transform(ck.graph, ck.mark, strategy="saturate")
        assert result.strategy == "saturate" and len(result.pareto) >= 2
        snapshot = session.metrics()
        assert snapshot.saturation["states"] > 0
        assert snapshot.saturation["frontier"] == len(result.pareto)
        assert "saturation:" in snapshot.summary()
        assert snapshot.from_dict(snapshot.to_dict()).saturation == snapshot.saturation

    def test_session_rejects_unknown_strategy(self):
        from repro.api import Session

        session = Session(use_cache=False)
        ck = compile_program(gcd_program(), session.env).kernels[0]
        with pytest.raises(RewriteError, match="unknown strategy"):
            session.transform(ck.graph, ck.mark, strategy="nope")
