"""Tests for the refinement metatheory (section 4.6).

The paper proves refinement is a preorder and is preserved by the product
and connect combinators, then derives theorem 4.6 (replacement refines).
These tests check each property on concrete bounded instances, which is
how an executable semantics validates a metatheory: any law broken by the
implementation shows up as a counterexample here.
"""

import pytest

from repro.components import buffer, default_environment, pure
from repro.core import ExprHigh, denote
from repro.core.module import connect_ports, product
from repro.core.ports import InternalPort, IOPort, PortMap
from repro.core.semantics import denote as denote_low
from repro.refinement import refines, uniform_stimuli


def denote_modules(expr, env):
    return denote_low(expr, env)


@pytest.fixture
def env():
    return default_environment(capacity=1)


def single(env, spec, name="n"):
    g = ExprHigh()
    g.add_node(name, spec)
    for i, p in enumerate(spec.in_ports):
        g.mark_input(i, name, p)
    for i, p in enumerate(spec.out_ports):
        g.mark_output(i, name, p)
    return denote(g.lower(), env)


class TestPreorder:
    def test_reflexivity(self, env):
        for spec in (buffer(slots=1), pure("incr")):
            module = single(env, spec)
            assert refines(module, module, uniform_stimuli(module, (0, 1)))

    def test_transitivity_on_buffers(self, env):
        b1 = single(env, buffer(slots=1))
        b2 = single(env, buffer(slots=2))
        b3 = single(env, buffer(slots=3))
        stimuli = uniform_stimuli(b1, (0, 1))
        assert refines(b1, b2, stimuli)
        assert refines(b2, b3, stimuli)
        assert refines(b1, b3, stimuli)  # the composition the preorder promises

    def test_antisymmetry_fails_as_expected(self, env):
        """Refinement is a preorder, not a partial order: mutually refining
        modules need not be equal — e.g. a buffer against itself renamed."""
        a = single(env, buffer(slots=2))
        b = single(env, buffer(slots=2))
        stimuli = uniform_stimuli(a, (0,))
        assert refines(a, b, stimuli) and refines(b, a, stimuli)


class TestCongruence:
    """Refinement is preserved over ⊎ and [o ⇝ i] (the §4.6 lemmas)."""

    def _renamed(self, env, spec, instance):
        module = single(env, spec)
        from repro.core.module import rename

        in_map = PortMap({IOPort(0): InternalPort(instance, "in")})
        out_map = PortMap({IOPort(0): InternalPort(instance, "out")})
        return rename(module, in_map, out_map)

    def test_product_preserves_refinement(self, env):
        small = single(env, buffer(slots=1))
        large = single(env, buffer(slots=2))
        other = self._renamed(env, pure("incr"), "ctx")
        lhs = product(small, other)
        rhs = product(large, other)
        stimuli = {IOPort(0): (0, 1), InternalPort("ctx", "in"): (5,)}
        assert refines(lhs, rhs, stimuli)

    def test_connect_preserves_refinement(self, env):
        small = single(env, buffer(slots=1))
        large = single(env, buffer(slots=2))
        stage = self._renamed(env, pure("incr"), "ctx")
        lhs = connect_ports(product(small, stage), IOPort(0), InternalPort("ctx", "in"))
        rhs = connect_ports(product(large, stage), IOPort(0), InternalPort("ctx", "in"))
        stimuli = {IOPort(0): (0, 1)}
        assert refines(lhs, rhs, stimuli)


class TestReplacementTheorem:
    """Theorem 4.6 observed: rhs ⊑ lhs implies e[lhs := rhs] ⊑ e."""

    def _context(self, inner_nodes):
        """A graph embedding *inner_nodes* between two incr stages."""
        g = ExprHigh()
        g.add_node("pre", pure("incr"))
        g.add_node("post", pure("incr"))
        entry, exit_ = inner_nodes(g)
        g.connect("pre", "out0", entry[0], entry[1])
        g.connect(exit_[0], exit_[1], "post", "in0")
        g.mark_input(0, "pre", "in0")
        g.mark_output(0, "post", "out0")
        return g

    def test_replacing_refining_subterm_refines(self, env):
        def two_buffers(g):
            g.add_node("b1", buffer(slots=1))
            g.add_node("b2", buffer(slots=1))
            g.connect("b1", "out0", "b2", "in0")
            return ("b1", "in0"), ("b2", "out0")

        def one_buffer(g):
            g.add_node("b", buffer(slots=2))
            return ("b", "in0"), ("b", "out0")

        spec_graph = self._context(two_buffers)
        impl_graph = self._context(one_buffer)
        # First the premise: the replacement refines the replaced subgraph?
        # A 2-slot buffer does NOT refine a chain (no pre-input taus), but a
        # chain refines a 2-slot buffer — so the valid rewrite direction is
        # buffer(2) -> chain. Check that direction end to end.
        impl = denote_low(spec_graph.lower(), env)  # chain inside context
        spec = denote_low(impl_graph.lower(), env.with_capacity(4))
        stimuli = uniform_stimuli(impl, (0, 1))
        assert refines(impl, spec, stimuli)

    def test_theorem_46_on_exprlow_directly(self, env):
        """The literal ExprLow statement: ⟦rhs⟧ ⊑ ⟦lhs⟧ implies
        ⟦e[lhs := rhs]⟧ ⊑ ⟦e⟧, using the syntactic substitution itself."""
        from repro.core import exprlow
        from repro.core.encoding import encode_component
        from repro.core.ports import InternalPort, PortMap, sequential_map

        def buffer_base(name, slots):
            return exprlow.Base(
                encode_component("Buffer", {"slots": slots}),
                sequential_map(name, ["in0"]),
                sequential_map(name, ["out0"]),
            )

        def incr_base(name):
            return exprlow.Base(
                encode_component("Pure", {"fn": "incr"}),
                sequential_map(name, ["in0"]),
                sequential_map(name, ["out0"]),
            )

        lhs = buffer_base("mid", 2)
        rhs = buffer_base("mid", 1)
        # Premise: rhs ⊑ lhs (a smaller buffer refines a bigger one).
        stimuli_single = uniform_stimuli(denote_modules(rhs, env), (0, 1))
        assert refines(
            denote_modules(rhs, env), denote_modules(lhs, env.with_capacity(4)), stimuli_single
        )
        # Context e: incr ; mid-buffer, connected.
        e = exprlow.Connect(
            InternalPort("pre", "out0"),
            InternalPort("mid", "in0"),
            exprlow.Product(incr_base("pre"), lhs),
        )
        rewritten = e.substitute(lhs, rhs)
        assert rewritten != e
        impl = denote_modules(rewritten, env)
        spec = denote_modules(e, env.with_capacity(4))
        assert refines(impl, spec, uniform_stimuli(impl, (0, 1)))

    def test_replacing_non_refining_subterm_can_break(self, env):
        def id_stage(g):
            g.add_node("mid", pure("id"))
            return ("mid", "in0"), ("mid", "out0")

        def incr_stage(g):
            g.add_node("mid", pure("incr"))
            return ("mid", "in0"), ("mid", "out0")

        original = self._context(id_stage)
        broken = self._context(incr_stage)
        impl = denote_low(broken.lower(), env)
        spec = denote_low(original.lower(), env.with_capacity(4))
        stimuli = uniform_stimuli(impl, (0,))
        assert not refines(impl, spec, stimuli)
