"""Trace semantics and trace-inclusion testing.

The paper defines behaviours of a graph as traces of input/output values and
proves that refinement implies trace inclusion.  Here traces are enumerated
directly: an *event* is ``("in", port, value)`` or ``("out", port, value)``;
internal transitions are invisible.  :func:`trace_inclusion` bounded-checks
that every implementation trace is also a specification trace — the property
the test-suite uses to validate the simulation checker against an
independent semantics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..core.module import Module, State, Value
from ..core.ports import Port

Event = tuple[str, Port, Value]
Trace = tuple[Event, ...]


def _after_events(module: Module, states: frozenset[State], event: Event) -> frozenset[State]:
    """States reachable by performing *event* (with interleaved taus) from *states*."""
    kind, port, value = event
    closed: set[State] = set()
    for state in states:
        closed.update(module.tau_closure(state))
    result: set[State] = set()
    if kind == "in":
        transition = module.inputs.get(port)
        if transition is None:
            return frozenset()
        for state in closed:
            for nxt in transition.fire(state, value):
                result.update(module.tau_closure(nxt))
    else:
        transition = module.outputs.get(port)
        if transition is None:
            return frozenset()
        for state in closed:
            for emitted, nxt in transition.fire(state):
                if emitted == value:
                    result.update(module.tau_closure(nxt))
    return frozenset(result)


def enumerate_traces(
    module: Module,
    stimuli: Mapping[Port, Iterable[Value]],
    depth: int,
) -> frozenset[Trace]:
    """All I/O traces of length ≤ *depth* under the given stimuli."""
    stimuli = {port: tuple(values) for port, values in stimuli.items()}
    initial: set[State] = set()
    for state in module.init:
        initial.update(module.tau_closure(state))

    traces: set[Trace] = {()}
    frontier: list[tuple[Trace, frozenset[State]]] = [((), frozenset(initial))]
    while frontier:
        trace, states = frontier.pop()
        if len(trace) >= depth:
            continue
        for event in _possible_events(module, states, stimuli):
            nxt = _after_one(module, states, event)
            if not nxt:
                continue
            extended = trace + (event,)
            if extended not in traces:
                traces.add(extended)
                frontier.append((extended, nxt))
    return frozenset(traces)


def _possible_events(
    module: Module,
    states: frozenset[State],
    stimuli: Mapping[Port, tuple[Value, ...]],
) -> Iterator[Event]:
    for port, values in stimuli.items():
        transition = module.inputs.get(port)
        if transition is None:
            continue
        for value in values:
            if any(True for state in states for _ in transition.fire(state, value)):
                yield ("in", port, value)
    for port, transition in module.outputs.items():
        emitted = {value for state in states for value, _ in transition.fire(state)}
        for value in emitted:
            yield ("out", port, value)


def _after_one(module: Module, states: frozenset[State], event: Event) -> frozenset[State]:
    kind, port, value = event
    result: set[State] = set()
    if kind == "in":
        transition = module.inputs[port]
        for state in states:
            for nxt in transition.fire(state, value):
                result.update(module.tau_closure(nxt))
    else:
        transition = module.outputs[port]
        for state in states:
            for emitted, nxt in transition.fire(state):
                if emitted == value:
                    result.update(module.tau_closure(nxt))
    return frozenset(result)


def can_perform(module: Module, trace: Trace) -> bool:
    """Whether the module can perform the exact event sequence *trace*."""
    states: set[State] = set()
    for state in module.init:
        states.update(module.tau_closure(state))
    current = frozenset(states)
    for event in trace:
        current = _after_events(module, current, event)
        if not current:
            return False
    return True


def trace_inclusion(
    impl: Module,
    spec: Module,
    stimuli: Mapping[Port, Iterable[Value]],
    depth: int,
) -> Trace | None:
    """Return an implementation trace the spec cannot perform, or None.

    ``None`` means every impl trace of length ≤ *depth* is a spec trace —
    the behaviour-inclusion notion that refinement implies (section 4.4).
    """
    impl_traces = enumerate_traces(impl, stimuli, depth)
    for trace in sorted(impl_traces, key=lambda t: (len(t), repr(t))):
        if not can_perform(spec, trace):
            return trace
    return None
