"""Subgraph matching: locating a rewrite's left-hand side in a host graph.

The matcher finds injective mappings from pattern nodes to host nodes such
that

* component types and port lists agree,
* concrete pattern parameters agree and :class:`Var` metavariables bind
  consistently,
* every pattern-internal connection exists identically in the host,
* every pattern boundary port (marked external input/output) corresponds to
  a host port *not* fed from or feeding into the matched region — the
  crossing edges the rewrite will re-attach.

Patterns are *closed*: every pattern node port is either connected inside
the pattern or marked as interface I/O, so a successful match guarantees the
matched host region touches the rest of the graph only through the
interface.  That is what makes removal and replacement sound.

Candidate enumeration is *anchored* on the host graph's indexes: the first
pattern node (and the first node of any disconnected pattern component)
draws its candidates from the component-type index, and every subsequent
pattern node derives its (at most one, since ports are single-use)
candidate from the host adjacency of an already-mapped neighbour.  The
per-pattern matching order and anchoring plan are computed once per
:class:`Rewrite` and cached on it.  Enumeration order is unchanged from the
historical scan — matches are still yielded in sorted-host-name order — so
``first_match`` picks the same occurrence the full scan would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .. import obs
from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec
from ..errors import MatchError
from .rewrite import Match, Rewrite, Var


@dataclass
class MatchStats:
    """Counters filled in by one matcher invocation."""

    candidates: int = 0  # candidate bindings attempted (spec comparisons)


@dataclass(frozen=True)
class _Anchor:
    """How to derive host candidates for one ordered pattern node.

    ``via`` is None for a fresh anchor (candidates come from the type
    index); otherwise it names an already-mapped pattern node and the edge
    direction/ports linking it to this node, from which the unique host
    candidate is read off the adjacency indexes.
    """

    via: str | None = None
    forward: bool = True  # True: via.src_port -> self.dst_port edge
    via_port: str = ""
    own_port: str = ""


@dataclass
class _MatchPlan:
    """The cached per-rewrite matching strategy."""

    order: list[str]
    anchors: list[_Anchor]
    specs: list[NodeSpec]
    connected: bool = True  # False when the pattern has >1 component
    stale_guard: tuple = field(default_factory=tuple)


def match_plan(rewrite: Rewrite) -> _MatchPlan:
    """The (cached) matching order and anchoring plan for *rewrite*.

    The plan is invalidated when the pattern's node set changes; rewrites
    are treated as immutable after construction everywhere else.
    """
    pattern = rewrite.lhs
    guard = (len(pattern.nodes), len(pattern.connections))
    plan = getattr(rewrite, "_match_plan", None)
    if plan is not None and plan.stale_guard == guard:
        obs.count("matcher.plan_cache_hits")
        return plan
    obs.count("matcher.plan_cache_misses")
    pattern.validate()  # closed-pattern requirement
    order = _matching_order(pattern)
    if not order:
        raise MatchError(f"rewrite {rewrite.name!r} has an empty pattern")
    anchors: list[_Anchor] = []
    connected = True
    placed: set[str] = set()
    for name in order:
        anchor = _anchor_for(pattern, name, placed)
        if anchor.via is None and placed:
            connected = False
        anchors.append(anchor)
        placed.add(name)
    plan = _MatchPlan(
        order=order,
        anchors=anchors,
        specs=[pattern.nodes[name] for name in order],
        connected=connected,
        stale_guard=guard,
    )
    rewrite._match_plan = plan  # type: ignore[attr-defined]
    return plan


def _anchor_for(pattern: ExprHigh, name: str, placed: set[str]) -> _Anchor:
    """The first pattern edge linking *name* to an already-placed node."""
    for src, dst in pattern.in_edges(name):
        if src.node in placed:
            return _Anchor(via=src.node, forward=True, via_port=src.port, own_port=dst.port)
    for src, dst in pattern.out_edges(name):
        if dst.node in placed:
            return _Anchor(via=dst.node, forward=False, via_port=dst.port, own_port=src.port)
    return _Anchor()


def find_matches(
    graph: ExprHigh,
    rewrite: Rewrite,
    anchors: Iterable[str] | None = None,
    stats: MatchStats | None = None,
) -> Iterator[Match]:
    """Yield every match of *rewrite*'s lhs in *graph*, deterministically.

    *anchors*, when given, restricts the host nodes considered for the
    first pattern node — the dirty-region hook used by the rewrite engine's
    worklist fixpoint.  *stats* collects candidate-binding counts.
    """
    plan = match_plan(rewrite)
    if stats is None:
        stats = MatchStats()
    anchor_set = None if anchors is None else set(anchors)
    yield from _extend(graph, rewrite.lhs, plan, 0, {}, {}, anchor_set, stats)


def first_match(
    graph: ExprHigh,
    rewrite: Rewrite,
    anchors: Iterable[str] | None = None,
    stats: MatchStats | None = None,
) -> Match | None:
    """The first match in deterministic order, or None."""
    return next(find_matches(graph, rewrite, anchors=anchors, stats=stats), None)


def _matching_order(pattern: ExprHigh) -> list[str]:
    """Order pattern nodes so each (after the first) touches a prior node.

    Keeps the backtracking search anchored: candidates for later nodes are
    constrained by connections to already-matched nodes.
    """
    names = sorted(pattern.nodes)
    if not names:
        return []
    order = [names[0]]
    placed = {names[0]}
    remaining = [n for n in names if n not in placed]
    while remaining:
        progressed = False
        for name in list(remaining):
            if any(
                (src.node in placed) != (dst.node in placed)
                and name in (src.node, dst.node)
                for dst, src in pattern.connections.items()
            ):
                order.append(name)
                placed.add(name)
                remaining.remove(name)
                progressed = True
        if not progressed:  # disconnected pattern: anchor a fresh component
            order.append(remaining[0])
            placed.add(remaining[0])
            remaining.pop(0)
    return order


def _candidates(
    graph: ExprHigh,
    plan: _MatchPlan,
    depth: int,
    node_map: dict[str, str],
    anchor_set: set[str] | None,
) -> list[str]:
    """Host candidates for the pattern node at *depth*, in sorted order."""
    anchor = plan.anchors[depth]
    if anchor.via is None:
        names = graph.nodes_of_type(plan.specs[depth].typ)
        if depth == 0 and anchor_set is not None:
            names = [name for name in names if name in anchor_set]
        return sorted(names)
    host_via = node_map[anchor.via]
    if anchor.forward:
        # Pattern edge via.via_port -> this.own_port: the host candidate is
        # whatever the mapped node's output feeds (single-use ports make
        # this unique).
        dst = graph.sink_of(host_via, anchor.via_port)
        if dst is None or dst.port != anchor.own_port:
            return []
        return [dst.node]
    src = graph.source_of(host_via, anchor.via_port)
    if src is None or src.port != anchor.own_port:
        return []
    return [src.node]


def _extend(
    graph: ExprHigh,
    pattern: ExprHigh,
    plan: _MatchPlan,
    depth: int,
    node_map: dict[str, str],
    params: dict[str, object],
    anchor_set: set[str] | None,
    stats: MatchStats,
) -> Iterator[Match]:
    if depth == len(plan.order):
        match = _finalize(graph, pattern, node_map, params)
        if match is not None:
            yield match
        return
    pattern_name = plan.order[depth]
    pattern_spec = plan.specs[depth]
    for host_name in _candidates(graph, plan, depth, node_map, anchor_set):
        if host_name in node_map.values():
            continue
        stats.candidates += 1
        bound = _spec_matches(pattern_spec, graph.nodes[host_name], params)
        if bound is None:
            continue
        node_map[pattern_name] = host_name
        if _connections_consistent(graph, pattern, node_map):
            yield from _extend(graph, pattern, plan, depth + 1, node_map, bound, anchor_set, stats)
        del node_map[pattern_name]


def _spec_matches(
    pattern_spec: NodeSpec,
    host_spec: NodeSpec,
    params: dict[str, object],
) -> dict[str, object] | None:
    """Check spec compatibility; return extended bindings or None."""
    if pattern_spec.typ != host_spec.typ:
        return None
    if pattern_spec.in_ports != host_spec.in_ports:
        return None
    if pattern_spec.out_ports != host_spec.out_ports:
        return None
    bound = dict(params)
    for key, value in pattern_spec.params:
        host_value = host_spec.param(key, _MISSING)
        if isinstance(value, Var):
            if host_value is _MISSING:
                return None
            existing = bound.get(value.name, _MISSING)
            if existing is _MISSING:
                bound[value.name] = host_value
            elif existing != host_value:
                return None
        else:
            if host_value != value:
                return None
    return bound


_MISSING = object()


def _connections_consistent(
    graph: ExprHigh,
    pattern: ExprHigh,
    node_map: dict[str, str],
) -> bool:
    """Check pattern connections among currently mapped nodes."""
    for dst, src in pattern.connections.items():
        if dst.node in node_map and src.node in node_map:
            host_src = graph.source_of(node_map[dst.node], dst.port)
            if host_src != Endpoint(node_map[src.node], src.port):
                return False
    return True


def _finalize(
    graph: ExprHigh,
    pattern: ExprHigh,
    node_map: dict[str, str],
    params: dict[str, object],
) -> Match | None:
    """Validate boundary conditions and assemble the Match."""
    matched_hosts = set(node_map.values())

    inputs: dict[int, Endpoint] = {}
    for index, endpoint in pattern.inputs.items():
        host = Endpoint(node_map[endpoint.node], endpoint.port)
        source = graph.source_of(host.node, host.port)
        if source is not None and source.node in matched_hosts:
            return None  # boundary input is fed from inside the region
        inputs[index] = host

    outputs: dict[int, Endpoint] = {}
    for index, endpoint in pattern.outputs.items():
        host = Endpoint(node_map[endpoint.node], endpoint.port)
        sink = graph.sink_of(host.node, host.port)
        if sink is not None and sink.node in matched_hosts:
            return None  # boundary output feeds back into the region
        outputs[index] = host

    # Host connections touching the region must all be accounted for: either
    # a pattern-internal connection or a crossing at an interface port.
    # Only the matched hosts' incident edges can touch the region, so the
    # check walks the per-node edge lists instead of every graph edge.
    interface_ports = set(inputs.values()) | set(outputs.values())
    internal = {
        (Endpoint(node_map[src.node], src.port), Endpoint(node_map[dst.node], dst.port))
        for dst, src in pattern.connections.items()
    }
    for host_name in matched_hosts:
        for src, dst in graph.in_edges(host_name):
            if src.node in matched_hosts:
                if (src, dst) not in internal:
                    return None  # extra edge inside the region not in the pattern
            elif dst not in interface_ports:
                return None
        for src, dst in graph.out_edges(host_name):
            if dst.node not in matched_hosts and src not in interface_ports:
                return None

    return Match(
        nodes=dict(node_map),
        params=dict(params),
        inputs=inputs,
        outputs=outputs,
        host_specs={node_map[p]: graph.nodes[node_map[p]] for p in node_map},
    )
