"""Cycle-level simulation of elastic circuits (the ModelSim substitute)."""

from .cycle import Channel, CycleSimulator, SimStats
from .trace import FiringEvent, FiringTrace, render_timeline

__all__ = [
    "Channel",
    "CycleSimulator",
    "SimStats",
    "FiringEvent",
    "FiringTrace",
    "render_timeline",
]
