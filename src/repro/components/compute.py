"""Computation components: Operator, Pure, Constant.

An **Operator** applies a named n-ary function to its inputs, like the
modulo component of section 4.3: inputs are queued per argument and the
function is applied in the output transition once every argument queue is
non-empty.

A **Pure** component (section 3.2) has exactly one input and one output and
applies a function to each token — the canonical shape the rewrite engine
reduces loop bodies to before the out-of-order rewrite.  With ``tagged=true``
the function is mapped over the value of a (tag, value) pair, preserving the
tag, which is how a Pure body operates inside a Tagger/Untagger region.
"""

from __future__ import annotations

from typing import Iterator

from ..core.environment import Environment
from ..core.module import Module, State, Value, deq, enq, io_module
from ..core.ports import IOPort
from ..core.types import I32, UNIT, Type
from ..errors import SemanticsError


def _data_type(params: dict) -> Type:
    typ = params.get("type")
    return typ if isinstance(typ, Type) else I32


def build_operator(params: dict, env: Environment) -> Module:
    """Operator: a named n-ary function applied to synchronised inputs."""
    op = params.get("op")
    if not isinstance(op, str):
        raise SemanticsError("Operator requires an 'op' parameter naming its function")
    fn = env.function(op)
    cap = env.capacity
    typ = _data_type(params)
    tagged = bool(params.get("tagged", False))

    def make_in(index: int):
        def fire(state: State, value: Value) -> Iterator[State]:
            queues = list(state)  # type: ignore[arg-type]
            nxt = enq(queues[index], value, cap)
            if nxt is None:
                return
            queues[index] = nxt
            yield tuple(queues)

        return fire

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        queues = list(state)  # type: ignore[arg-type]
        popped = [deq(q) for q in queues]
        if any(p is None for p in popped):
            return
        heads = [p[0] for p in popped]  # type: ignore[index]
        rests = tuple(p[1] for p in popped)  # type: ignore[index]
        if tagged:
            tags = [h[0] for h in heads]  # type: ignore[index]
            if len(set(tags)) != 1:
                raise SemanticsError(
                    f"tagged operator {op!r} saw misaligned tags {tags}"
                )
            result = (tags[0], fn(*[h[1] for h in heads]))  # type: ignore[index]
        else:
            result = fn(*heads)
        yield result, rests

    return io_module(
        inputs={IOPort(i): (typ, make_in(i)) for i in range(fn.arity)},
        outputs={IOPort(0): (typ, out0)},
        init=[tuple(() for _ in range(fn.arity))],
    )


def build_pure(params: dict, env: Environment) -> Module:
    """Pure: one input, one output, a function applied per token."""
    name = params.get("fn")
    if not isinstance(name, str):
        raise SemanticsError("Pure requires an 'fn' parameter naming its function")
    fn = env.function(name)
    if fn.arity != 1:
        raise SemanticsError(f"Pure function {name!r} must be unary, has arity {fn.arity}")
    cap = env.capacity
    typ = _data_type(params)
    tagged = bool(params.get("tagged", False))

    def in0(state: State, value: Value) -> Iterator[State]:
        (queue,) = state  # type: ignore[misc]
        nxt = enq(queue, value, cap)
        if nxt is not None:
            yield (nxt,)

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        (queue,) = state  # type: ignore[misc]
        popped = deq(queue)
        if popped is None:
            return
        value, rest = popped
        if tagged:
            tag, inner = value  # type: ignore[misc]
            yield (tag, fn(inner)), (rest,)
        else:
            yield fn(value), (rest,)

    return io_module(
        inputs={IOPort(0): (typ, in0)},
        outputs={IOPort(0): (typ, out0)},
        init=[((),)],
    )


def build_reorg(params: dict, env: Environment) -> Module:
    """Reorg: reorganises a tuple according to the port type signatures.

    Table 1's tuple-reshaping component: semantically a Pure whose function
    is restricted to structural shuffles (swap / assoc / projections), so
    it can never compute — only rewire.
    """
    from ..rewriting import algebra

    name = params.get("fn")
    if not isinstance(name, str):
        raise SemanticsError("Reorg requires an 'fn' parameter naming its shuffle")
    if not algebra.is_shuffle(name):
        raise SemanticsError(f"Reorg function {name!r} is not a pure tuple shuffle")
    algebra.ensure(env, name)
    return build_pure(params, env)


def build_constant(params: dict, env: Environment) -> Module:
    """Constant: emits its value once per control token received."""
    value = params.get("value", 0)
    cap = env.capacity
    typ = _data_type(params)

    def in0(state: State, token: Value) -> Iterator[State]:
        (count,) = state  # type: ignore[misc]
        if cap is not None and count >= cap:  # type: ignore[operator]
            return
        yield (count + 1,)  # type: ignore[operator]

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        (count,) = state  # type: ignore[misc]
        if count:  # type: ignore[truthy-bool]
            yield value, (count - 1,)  # type: ignore[operator]

    return io_module(
        inputs={IOPort(0): (UNIT, in0)},
        outputs={IOPort(0): (typ, out0)},
        init=[(0,)],
    )
