"""Shared fixtures for the benchmark harness.

Running every benchmark through all four flows takes minutes, so the
results are computed once per session and shared by every table/figure
bench module.
"""

from __future__ import annotations

import pytest

from repro.eval.paper_data import BENCHMARKS
from repro.eval.runner import run_benchmark

_CACHE: dict = {}


def get_results() -> dict:
    """All six paper benchmarks through all four flows (computed once)."""
    if not _CACHE:
        for name in BENCHMARKS:
            _CACHE[name] = run_benchmark(name)
    return _CACHE


@pytest.fixture(scope="session")
def results():
    return get_results()


@pytest.fixture
def once(benchmark):
    """Run a check exactly once under the benchmark fixture.

    The harness is driven with ``--benchmark-only``, which deselects tests
    that do not use the fixture; table-printing and shape-check tests wrap
    themselves in this helper so they run (and get timed) alongside the
    simulation benchmarks.
    """

    used = []

    def run(fn=lambda: None):
        used.append(True)
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    yield run
    if not used:  # keep the benchmark fixture "used" even for pure checks
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
