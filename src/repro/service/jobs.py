"""Jobs and the priority queue that schedules them.

A :class:`Job` is one unit of service work: a kind from
:data:`repro.service.ops.JOB_KINDS`, canonical parameters, and the state
machine ``queued -> running -> done | failed``, with ``cancelled``
reachable from ``queued`` (immediately) and from ``running`` (best
effort — the cancel flag is visible to the executing thread, but a
compute-bound op finishes its current phase).

:class:`JobQueue` schedules jobs onto a bounded set of asyncio worker
tasks.  Scheduling is by ``(priority, submission order)`` — lower
priority numbers run first, ties in FIFO order — over a binary heap, so
an interactive ``simulate`` can overtake a backlog of batch ``bench``
jobs.  Each job runs under :func:`asyncio.wait_for` with its own timeout;
a timeout marks the job ``failed`` and requests cancellation of the
underlying work.

The queue does not know how to *execute* anything: the server injects an
async ``execute(job) -> result dict`` callable (which checks out a
Session and hops onto a worker thread).  That keeps this module free of
HTTP and Session concerns and directly testable with plain coroutines.

Watchers (the ``?watch=1`` NDJSON streams) wait on one shared
:class:`asyncio.Condition`; every state transition bumps the job's
``version`` and notifies, so a watcher emits exactly one status line per
transition it observes.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Awaitable, Callable

from ..errors import ServiceError

#: Every job state; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset(("done", "failed", "cancelled"))


@dataclass
class Job:
    """One service job and everything the status endpoints report."""

    id: str
    kind: str
    params: dict
    key: str | None = None
    priority: int = 0
    timeout: float | None = None
    state: str = "queued"
    result: dict | list | None = None
    error: str | None = None
    seconds: float = 0.0
    metrics: dict = field(default_factory=dict)
    from_store: bool = False
    coalesced: int = 0
    cancel_requested: bool = False
    version: int = 0
    _started: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_dict(self) -> dict:
        """The JSON status body (``GET /v1/jobs/{id}`` and watch lines)."""
        status = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "version": self.version,
            "from_store": self.from_store,
            "coalesced": self.coalesced,
        }
        if self.key is not None:
            status["key"] = self.key
        if self.terminal:
            status["seconds"] = round(self.seconds, 6)
        if self.error is not None:
            status["error"] = self.error
        if self.metrics:
            status["metrics"] = self.metrics
        return status


class JobQueue:
    """Priority scheduling of jobs over bounded asyncio workers.

    Parameters
    ----------
    execute:
        ``async (job) -> result`` — runs one job's work and returns the
        wire-format result dict.  Exceptions mark the job ``failed``.
    concurrency:
        Number of worker tasks (= jobs executing at once).
    max_pending:
        Bound on the number of queued-but-not-running jobs; submissions
        beyond it raise :class:`ServiceError` (backpressure, not OOM).
    default_timeout:
        Per-job timeout in seconds when the submission names none.
    """

    def __init__(
        self,
        execute: Callable[[Job], Awaitable[Any]],
        *,
        concurrency: int = 2,
        max_pending: int = 256,
        default_timeout: float | None = None,
    ):
        self._execute = execute
        self.concurrency = max(1, int(concurrency))
        self.max_pending = max(1, int(max_pending))
        self.default_timeout = default_timeout
        self.jobs: dict[str, Job] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._changed: asyncio.Condition = asyncio.Condition()
        self._workers: list[asyncio.Task] = []

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        while len(self._workers) < self.concurrency:
            self._workers.append(asyncio.create_task(self._worker()))

    async def close(self) -> None:
        """Cancel the worker tasks; queued jobs become ``cancelled``."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        for job in self.jobs.values():
            if not job.terminal:
                job.error = job.error or "service shut down"
                await self._mark(job, "cancelled")

    # -- submission ---------------------------------------------------------

    def new_job(
        self,
        kind: str,
        params: dict,
        *,
        key: str | None = None,
        priority: int = 0,
        timeout: float | None = None,
    ) -> Job:
        """Create and register a job (not yet queued — see :meth:`submit`)."""
        job = Job(
            id=f"job-{next(self._ids)}",
            kind=kind,
            params=dict(params),
            key=key,
            priority=int(priority),
            timeout=timeout if timeout is not None else self.default_timeout,
        )
        self.jobs[job.id] = job
        return job

    def submit(self, job: Job) -> Job:
        """Queue a registered job; raises :class:`ServiceError` when full."""
        depth = sum(
            1 for j in self.jobs.values() if j.state == "queued" and j is not job
        )
        if depth >= self.max_pending:
            raise ServiceError(
                f"job queue is full ({depth} pending >= max_pending={self.max_pending})"
            )
        heapq.heappush(self._heap, (job.priority, next(self._seq), job.id))
        self._kick()
        return job

    async def finish_from_store(self, job: Job, result) -> Job:
        """Complete a job immediately with a store-served result."""
        job.result = result
        job.from_store = True
        await self._mark(job, "done")
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}") from None

    def find_active(self, key: str) -> Job | None:
        """The queued/running job with this result key, if any (coalescing)."""
        for job in self.jobs.values():
            if job.key == key and not job.terminal:
                return job
        return None

    # -- cancellation -------------------------------------------------------

    async def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediate while queued, best-effort while running."""
        job = self.get(job_id)
        if job.state == "queued":
            job.cancel_requested = True
            job.error = "cancelled while queued"
            await self._mark(job, "cancelled")
        elif job.state == "running":
            job.cancel_requested = True
            await self._mark(job, job.state)  # bump version so watchers see it
        return job

    # -- watching -----------------------------------------------------------

    async def wait_change(self, job: Job, seen_version: int) -> Job:
        """Block until the job's version exceeds *seen_version*."""
        async with self._changed:
            await self._changed.wait_for(lambda: job.version > seen_version)
        return job

    async def wait_terminal(self, job: Job) -> Job:
        async with self._changed:
            await self._changed.wait_for(lambda: job.terminal)
        return job

    # -- accounting ---------------------------------------------------------

    def counts(self) -> dict:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts

    # -- internals ----------------------------------------------------------

    def _kick(self) -> None:
        async def notify() -> None:
            async with self._changed:
                self._changed.notify_all()

        asyncio.get_running_loop().create_task(notify())

    async def _mark(self, job: Job, state: str) -> None:
        job.state = state
        job.version += 1
        async with self._changed:
            self._changed.notify_all()

    def _pop(self) -> Job | None:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs.get(job_id)
            if job is not None and job.state == "queued":
                return job
        return None

    async def _worker(self) -> None:
        while True:
            job = self._pop()
            if job is None:
                # Re-check under the condition so a submission landing
                # between the failed pop and the wait cannot be missed.
                async with self._changed:
                    await self._changed.wait_for(lambda: bool(self._heap))
                continue
            job._started = perf_counter()
            await self._mark(job, "running")
            try:
                result = await asyncio.wait_for(self._execute(job), timeout=job.timeout)
            except asyncio.TimeoutError:
                job.cancel_requested = True
                job.error = f"timed out after {job.timeout}s"
                job.seconds = perf_counter() - job._started
                await self._mark(job, "failed")
            except asyncio.CancelledError:
                if not job.terminal:
                    job.error = "service shut down"
                    await self._mark(job, "cancelled")
                raise
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                job.error = f"{type(exc).__name__}: {exc}"
                job.seconds = perf_counter() - job._started
                await self._mark(job, "failed")
            else:
                job.result = result
                job.seconds = perf_counter() - job._started
                await self._mark(job, "done")
