"""Property: recheck accepts exactly the certificates search emits.

This fuzzes the certificate layer's core contract (docs/verification.md):
for a random bounded instance, `find_weak_simulation` either produces a
certificate that survives a serialise → hash → deserialise → recheck round
trip with a stable content hash, or a violation — and a certificate minted
for one instance is refused as evidence for another.  The same contract
must hold for the binary container: both encodings round-trip to the same
content hash and the same recheck verdict, any bit flip or truncation of
the container is rejected outright, and the incremental recheck agrees
with a full search on randomly rewritten graphs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import buffer, default_environment, pure
from repro.core import ExprHigh
from repro.core.semantics import denote
from repro.errors import CertificateError
from repro.refinement import (
    SimulationCertificate,
    certificate_from_bytes,
    certificate_to_bytes,
    find_weak_simulation,
    incremental_recheck,
    recheck_certificate,
    uniform_stimuli,
)


def chain_graph(length, fn=None):
    graph = ExprHigh()
    names = []
    for i in range(length):
        name = f"b{i}"
        graph.add_node(name, buffer(slots=1))
        names.append(name)
    if fn is not None:
        graph.add_node("p", pure(fn))
        names.append("p")
    for left, right in zip(names, names[1:]):
        graph.connect(left, "out0", right, "in0")
    graph.mark_input(0, names[0], "in0")
    graph.mark_output(0, names[-1], "out0")
    return graph


def wide_graph(slots, fn=None):
    graph = ExprHigh()
    graph.add_node("b", buffer(slots=slots))
    if fn is not None:
        graph.add_node("p", pure(fn))
        graph.connect("b", "out0", "p", "in0")
    graph.mark_input(0, "b", "in0")
    graph.mark_output(0, ("p" if fn is not None else "b"), "out0")
    return graph


@st.composite
def bounded_instances(draw):
    """A random (impl, spec, stimuli) triple; refinement may or may not hold."""
    env = default_environment(capacity=draw(st.integers(1, 2)))
    length = draw(st.integers(1, 3))
    slots = draw(st.integers(1, 3))
    fn = draw(st.sampled_from([None, "id", "incr"]))
    values = draw(
        st.sampled_from([(0,), (0, 1), (0, 1, 2), (7,), (1, 2)])
    )
    impl = denote(chain_graph(length, fn).lower(), env)
    spec = denote(wide_graph(slots, fn).lower(), env)
    stimuli = uniform_stimuli(impl, values)
    return impl, spec, stimuli


class TestRecheckMatchesSearch:
    @given(bounded_instances())
    @settings(max_examples=40, deadline=None)
    def test_roundtripped_certificate_rechecks_iff_search_holds(self, instance):
        impl, spec, stimuli = instance
        result = find_weak_simulation(impl, spec, stimuli)
        if not result.holds:
            assert result.violation is not None
            assert result.certificate is None
            return
        certificate = result.certificate
        restored = SimulationCertificate.from_dict(certificate.to_dict())
        assert restored.content_hash() == certificate.content_hash()
        rechecked = recheck_certificate(impl, spec, restored, stimuli)
        assert rechecked.holds
        # The recheck returns the same evidence it was given, byte for byte.
        assert rechecked.certificate.content_hash() == certificate.content_hash()

    @given(bounded_instances())
    @settings(max_examples=25, deadline=None)
    def test_relation_is_a_simulation_even_without_stimuli_argument(self, instance):
        impl, spec, stimuli = instance
        result = find_weak_simulation(impl, spec, stimuli)
        if not result.holds:
            return
        # The certificate records its stimulus domain, so rechecking with
        # stimuli=None replays the same bounded instance.
        assert recheck_certificate(impl, spec, result.certificate).holds


class TestBinaryEncodingMatchesJson:
    @given(bounded_instances())
    @settings(max_examples=25, deadline=None)
    def test_binary_and_json_round_trips_agree(self, instance):
        impl, spec, stimuli = instance
        result = find_weak_simulation(impl, spec, stimuli)
        if not result.holds:
            return
        certificate = result.certificate
        from_json = SimulationCertificate.from_dict(certificate.to_dict())
        from_binary = certificate_from_bytes(certificate_to_bytes(certificate))
        assert from_binary.content_hash() == from_json.content_hash()
        assert from_binary.content_hash() == certificate.content_hash()
        assert from_binary.relation == from_json.relation
        # both restored forms recheck to the same verdict
        via_json = recheck_certificate(impl, spec, from_json, stimuli)
        via_binary = recheck_certificate(impl, spec, from_binary, stimuli)
        assert via_json.holds and via_binary.holds
        assert (
            via_binary.certificate.content_hash()
            == via_json.certificate.content_hash()
        )

    @given(bounded_instances(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_any_bit_flip_is_rejected(self, instance, data):
        impl, spec, stimuli = instance
        result = find_weak_simulation(impl, spec, stimuli)
        if not result.holds:
            return
        blob = bytearray(certificate_to_bytes(result.certificate))
        # The integrity hash covers the whole payload and the envelope
        # covers the header, so a flip anywhere — magic, version, digest,
        # or any interned table — must be rejected, never mis-decoded.
        position = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[position] ^= 1 << bit
        with pytest.raises(CertificateError):
            certificate_from_bytes(bytes(blob))

    @given(bounded_instances(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_any_truncation_is_rejected(self, instance, data):
        impl, spec, stimuli = instance
        result = find_weak_simulation(impl, spec, stimuli)
        if not result.holds:
            return
        blob = certificate_to_bytes(result.certificate)
        keep = data.draw(st.integers(0, len(blob) - 1))
        with pytest.raises(CertificateError):
            certificate_from_bytes(blob[:keep])


class TestIncrementalAgreesWithFullSearch:
    @given(
        st.integers(1, 2),
        st.sampled_from(["id", "incr", "comp(id,id)"]),
        st.sampled_from(["id", "incr", "comp(id,id)"]),
        st.integers(1, 2),
    )
    @settings(max_examples=20, deadline=None)
    def test_incremental_verdict_equals_full_search(
        self, capacity, fn_old, fn_new, slots
    ):
        env = default_environment(capacity=capacity)
        lhs = chain_graph(slots, fn_old)
        rhs_old = chain_graph(slots, fn_old)
        rhs_new = chain_graph(slots, fn_new)
        spec = denote(lhs.lower(), env)
        impl_old = denote(rhs_old.lower(), env)
        stimuli = uniform_stimuli(impl_old, (0, 1))
        baseline = find_weak_simulation(impl_old, spec, stimuli)
        assert baseline.holds  # a graph refines itself

        impl_new = denote(rhs_new.lower(), env)
        outcome = incremental_recheck(
            rhs_old, rhs_new, env, impl_new, spec, baseline.certificate, stimuli
        )
        full = find_weak_simulation(impl_new, spec, stimuli)
        if not outcome.eligible:
            return  # conservative bail-out: the full path decides instead
        assert outcome.result.holds == full.holds
        if outcome.result.holds:
            # the incremental pass touched at most the stored relation
            assert outcome.entries_validated <= len(baseline.certificate.relation)
            assert (
                outcome.result.certificate.relation
                == baseline.certificate.relation
            )


class TestCertificateIsInstanceSpecific:
    def test_stimuli_mismatch_is_refused(self):
        env = default_environment(capacity=2)
        impl = denote(chain_graph(2).lower(), env)
        spec = denote(wide_graph(2).lower(), env)
        narrow = uniform_stimuli(impl, (0, 1))
        wide_domain = uniform_stimuli(impl, (0, 1, 2))
        certificate = find_weak_simulation(impl, spec, narrow).certificate
        assert certificate is not None
        rejected = recheck_certificate(impl, spec, certificate, wide_domain)
        assert not rejected.holds
        assert rejected.violation.kind == "interface"

    def test_certificate_for_other_modules_is_refused(self):
        env = default_environment(capacity=2)
        impl = denote(chain_graph(2).lower(), env)
        spec = denote(wide_graph(2).lower(), env)
        stimuli = uniform_stimuli(impl, (0, 1))
        certificate = find_weak_simulation(impl, spec, stimuli).certificate
        # wide ⊑ chain fails outright, and the chain ⊑ wide certificate must
        # not smuggle in a "holds" for it.
        assert not recheck_certificate(spec, impl, certificate, None).holds
